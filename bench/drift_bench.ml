(* The drift benchmark: support-only mining vs the cost-benefit policy on
   the same phased drifting workloads (Repro_workload.Drift), reporting
   per phase how many refreshes each miner needed to stop changing the
   index, how many pages the converged index occupies, and reader latency
   percentiles — as BENCH_DRIFT.json.

   The run doubles as a correctness check: every phase's result stream is
   checksummed against the naive single-threaded oracle for both engines,
   so a green drift bench says adaptation moved cost, never answers. *)

module Experiments = Repro_harness.Experiments
module Dataset = Repro_datagen.Dataset
module Drift = Repro_workload.Drift
module Self_tuning = Repro_adaptive.Self_tuning
module Policy = Repro_adaptive.Policy
module Apex = Repro_apex.Apex
module Hash_tree = Repro_apex.Hash_tree
module Apex_persist = Repro_apex.Apex_persist
module Label = Repro_graph.Label
module Naive_eval = Repro_pathexpr.Naive_eval
module Query = Repro_pathexpr.Query
module Cost = Repro_storage.Cost
module Pager = Repro_storage.Pager
module Buffer_pool = Repro_storage.Buffer_pool
module Histogram = Repro_telemetry.Metrics.Histogram

let seed = 42
let minsup = 0.03
let window = 500
let n_per_phase = 6000
let scratch_page_size = 256

(* FNV-1a over result nid streams; array lengths are folded in so
   "identical multiset, different split" cannot collide *)
let fnv h x = (h lxor x) * 0x01000193 land max_int

let checksum_fold h results =
  Array.fold_left fnv (fnv h (Array.length results)) results

(* index fingerprint: the forward paths of every hash-tree slot. Node ids
   are deliberately excluded — rebuilding the same logical index must
   fingerprint identically. *)
let fingerprint apex =
  let acc = ref [] in
  Hash_tree.iter_slots (Apex.tree apex) (fun suffix _slot is_remainder ->
      let key =
        String.concat "." (List.map string_of_int (suffix :> int list))
        ^ if is_remainder then "+R" else ""
      in
      acc := key :: !acc);
  List.sort_uniq String.compare !acc

let diff_size a b =
  let tbl = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) a;
  let extra_b = List.length (List.filter (fun k -> not (Hashtbl.mem tbl k)) b) in
  let tbl_b = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.replace tbl_b k ()) b;
  let extra_a = List.length (List.filter (fun k -> not (Hashtbl.mem tbl_b k)) a) in
  extra_a + extra_b

(* Converged index footprint, in [scratch_page_size]-byte pages of the
   serialized index image (hash tree + summary graph + extents). Raw
   extent volume alone cannot tell the two miners apart — G_APEX extents
   *partition* the per-label extents, so refining the partition conserves
   total edges — but every extra indexed path costs tree entries, summary
   nodes/edges and extent boundaries in the image, which is exactly the
   structure an index on disk must store. *)
let index_pages apex =
  let image_bytes = 8 * Array.length (Apex_persist.to_image apex) in
  (image_bytes + scratch_page_size - 1) / scratch_page_size

(* extent volume through a scratch store, for the report: near-identical
   across miners (the partition-invariance above), which is worth showing *)
let extent_pages g apex =
  let pager = Pager.create ~page_size:scratch_page_size () in
  let pool = Buffer_pool.create pager ~capacity:64 in
  let copy = Apex_persist.of_image g (Apex_persist.to_image apex) in
  Apex.materialize ~codec:`Raw copy pool;
  Pager.n_pages pager

type phase_report = {
  r_name : string;
  r_refreshes : int;
  r_changes : int list;  (* fingerprint symmetric-difference per refresh *)
  r_rtc : int;  (* 1-based index of last refresh that changed the index *)
  r_stable_tail : int;
  r_pages : int;
  r_extent_pages : int;
  r_nodes : int;
  r_edges : int;
  r_entries : int;
  r_p50_us : float;
  r_p99_us : float;
  r_checksum : int;
}

let run_engine ~g ~phases ~policy =
  let tuner =
    Self_tuning.create ~log_capacity:window ~min_support:minsup
      ~refresh_every:window ?policy g
  in
  let fp = ref (fingerprint (Self_tuning.apex tuner)) in
  List.map
    (fun ph ->
      let hist = Histogram.create () in
      let changes = ref [] in
      let cksum = ref 0x811c9dc5 in
      Array.iteri
        (fun i q ->
          let t0 = Unix.gettimeofday () in
          let res = Self_tuning.query tuner q in
          let dt = Unix.gettimeofday () -. t0 in
          Histogram.record hist dt;
          cksum := checksum_fold !cksum res;
          if (i + 1) mod window = 0 then begin
            let fp' = fingerprint (Self_tuning.apex tuner) in
            changes := diff_size !fp fp' :: !changes;
            fp := fp'
          end)
        ph.Drift.ph_queries;
      let changes = List.rev !changes in
      let rtc =
        List.fold_left
          (fun (i, last) c -> (i + 1, if c > 0 then i + 1 else last))
          (0, 0) changes
        |> snd
      in
      let refreshes = List.length changes in
      let nodes, edges = Apex.stats (Self_tuning.apex tuner) in
      { r_name = ph.Drift.ph_name;
        r_refreshes = refreshes;
        r_changes = changes;
        r_rtc = rtc;
        r_stable_tail = refreshes - rtc;
        r_pages = index_pages (Self_tuning.apex tuner);
        r_extent_pages = extent_pages g (Self_tuning.apex tuner);
        r_nodes = nodes;
        r_edges = edges;
        r_entries = Hash_tree.n_entries (Apex.tree (Self_tuning.apex tuner));
        r_p50_us = Histogram.quantile hist 0.5 *. 1e6;
        r_p99_us = Histogram.quantile hist 0.99 *. 1e6;
        r_checksum = !cksum })
    phases

let naive_checksums g phases =
  List.map
    (fun ph ->
      Array.fold_left
        (fun h q -> checksum_fold h (Naive_eval.eval_query g q))
        0x811c9dc5 ph.Drift.ph_queries)
    phases

(* Measure one candidate path against a throwaway APEX0: its per-query
   unit cost (the exact scalar the policy scores on) and its result size
   (a proxy for the extent pages indexing it would occupy). Drives both
   the cast selection and the cost-scale calibration. *)
let make_measure g =
  let probe = Self_tuning.create ~log_capacity:16 ~refresh_every:1_000_000 g in
  let labels = Repro_graph.Data_graph.labels g in
  fun p ->
    let steps = List.map (Label.to_string labels) p in
    let cost = Cost.create () in
    let res = Self_tuning.query ~cost probe (Query.Qtype1 steps) in
    ( Policy.unit_cost ~extent_pages:cost.Cost.extent_pages
        ~extent_edges:cost.Cost.extent_edges ~join_edges:cost.Cost.join_edges,
      Array.length res )

(* The policy's absolute cost scale: the geometric mean of the *worst
   cases* — the cheapest expensive rotating path and the most expensive
   chatter path — so every expensive path lands above 1 and every chatter
   path below, which is where the score gate needs them. *)
let calibrate measure (cast : Drift.cast) =
  let costs paths = List.map (fun p -> fst (measure p)) paths in
  let ce = List.fold_left Float.min infinity (costs cast.Drift.exp_rot) in
  let cc = List.fold_left Float.max 0. (costs cast.Drift.chatter) in
  (ce, cc, sqrt (ce *. cc))

(* --- JSON --- *)

let buf_phases b reports =
  let n = List.length reports in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "      {\"name\": \"%s\", \"refreshes\": %d, \
         \"refreshes_to_convergence\": %d, \"stable_tail\": %d, \
         \"state_changes\": [%s], \"index_pages\": %d, \"extent_pages\": %d, \
         \"apex_nodes\": %d, \"apex_edges\": %d, \"tree_entries\": %d, \"p50_us\": %.2f, \
         \"p99_us\": %.2f, \"checksum\": %d}%s\n"
        r.r_name r.r_refreshes r.r_rtc r.r_stable_tail
        (String.concat ", " (List.map string_of_int r.r_changes))
        r.r_pages r.r_extent_pages r.r_nodes r.r_edges r.r_entries r.r_p50_us
        r.r_p99_us
        r.r_checksum
        (if i = n - 1 then "" else ","))
    reports

let run (config : Experiments.config) ~out =
  let spec =
    match config.Experiments.datasets with
    | spec :: _ -> Dataset.scaled spec config.Experiments.scale
    | [] -> failwith "drift: no dataset configured"
  in
  Printf.printf "drift: dataset %s (target %d nodes)\n%!" spec.Dataset.name
    spec.Dataset.target_nodes;
  let g = Dataset.build_graph spec in
  let measure = make_measure g in
  let cast = Drift.cast ~measure g in
  let ce, cc, cost_scale = calibrate measure cast in
  Printf.printf
    "drift: calibrated unit costs — expensive %.3f, cheap %.3f (ratio %.2f), \
     cost_scale %.3f\n\
     %!"
    ce cc (ce /. cc) cost_scale;
  let labels = Repro_graph.Data_graph.labels g in
  let show_role name paths =
    List.iter
      (fun p ->
        let c, size = measure p in
        Printf.printf "drift:   %-14s %-40s cost %8.3f result %5d\n%!" name
          (String.concat "/" (List.map (Label.to_string labels) p))
          c size)
      paths
  in
  show_role "exp_rot" cast.Drift.exp_rot;
  show_role "exp_boundary" cast.Drift.exp_boundary;
  show_role "diurnal" cast.Drift.diurnal;
  show_role "crowd" cast.Drift.crowd;
  show_role "chatter" cast.Drift.chatter;
  show_role "cheap_boundary" cast.Drift.cheap_boundary;
  show_role "noise" cast.Drift.noise;
  let phases = Drift.phases ~seed ~n_per_phase ~measure ~minsup g in
  let support = run_engine ~g ~phases ~policy:None in
  let policy_cfg =
    { Policy.default_config with
      Policy.min_support = minsup;
      decay = 0.6;
      hysteresis = 0.4;
      cost_weight = 1.0;
      cost_scale }
  in
  let policy_t = Policy.create ~config:policy_cfg () in
  let policy = run_engine ~g ~phases ~policy:(Some policy_t) in
  let naive = naive_checksums g phases in
  (* invariants *)
  let checks_ok =
    List.for_all2 (fun r n -> r.r_checksum = n) support naive
    && List.for_all2 (fun r n -> r.r_checksum = n) policy naive
  in
  let faster =
    List.for_all2 (fun p s -> p.r_rtc < s.r_rtc) policy support
  in
  let smaller = List.for_all2 (fun p s -> p.r_pages < s.r_pages) policy support in
  let stable = List.for_all (fun p -> p.r_stable_tail >= 2) policy in
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"experiment\": \"drift\",\n";
  Printf.bprintf b "  \"dataset\": \"%s\",\n" spec.Dataset.name;
  Printf.bprintf b
    "  \"config\": {\"seed\": %d, \"minsup\": %.3f, \"window\": %d, \
     \"n_per_phase\": %d, \"scratch_page_size\": %d, \"decay\": %.2f, \
     \"hysteresis\": %.2f, \"cost_weight\": %.2f, \"cost_scale\": %.4f},\n"
    seed minsup window n_per_phase scratch_page_size policy_cfg.Policy.decay
    policy_cfg.Policy.hysteresis policy_cfg.Policy.cost_weight cost_scale;
  Printf.bprintf b
    "  \"calibration\": {\"expensive_unit_cost\": %.4f, \"cheap_unit_cost\": \
     %.4f},\n"
    ce cc;
  Printf.bprintf b "  \"support\": {\n    \"phases\": [\n";
  buf_phases b support;
  Printf.bprintf b "    ]\n  },\n";
  Printf.bprintf b "  \"policy\": {\n    \"phases\": [\n";
  buf_phases b policy;
  Printf.bprintf b
    "    ],\n    \"total_promotions\": %d,\n    \"total_evictions\": %d\n  },\n"
    (Policy.total_promotions policy_t)
    (Policy.total_evictions policy_t);
  Printf.bprintf b
    "  \"invariants\": {\"checksums_match\": %b, \"policy_converges_faster\": \
     %b, \"policy_smaller_index\": %b, \"policy_stable_tail\": %b}\n"
    checks_ok faster smaller stable;
  Printf.bprintf b "}\n";
  Out_channel.with_open_text out (fun oc -> Buffer.output_buffer oc b);
  List.iter2
    (fun s p ->
      Printf.printf
        "drift: %-12s support rtc %2d/%d pages %4d | policy rtc %2d/%d pages \
         %4d (tail %d) p50 %.1fus p99 %.1fus\n\
         %!"
        s.r_name s.r_rtc s.r_refreshes s.r_pages p.r_rtc p.r_refreshes
        p.r_pages p.r_stable_tail p.r_p50_us p.r_p99_us)
    support policy;
  Printf.printf "drift: -> %s\n%!" out;
  if not checks_ok then failwith "drift: result checksums diverge from the naive oracle";
  if not faster then failwith "drift: policy did not converge in fewer refreshes";
  if not smaller then failwith "drift: policy index is not smaller";
  if not stable then failwith "drift: policy kept changing state after convergence"
