(* Bechamel micro-benchmarks: one group per paper artifact, measuring the
   per-operation kernels behind it on a mid-size Flix dataset (plus a Ged
   dataset for the irregular-structure kernels). *)

open Bechamel
open Toolkit

let spec_flix = Option.get (Repro_datagen.Dataset.by_name "Flix01")
let spec_ged = Option.get (Repro_datagen.Dataset.by_name "Ged01")

let prepare () =
  let env_flix = Repro_harness.Env.prepare ~n_q1:200 ~n_q2:40 ~n_q3:50 spec_flix in
  let env_ged = Repro_harness.Env.prepare ~n_q1:200 ~n_q2:40 ~n_q3:50 spec_ged in
  (env_flix, env_ged)

let tests (env_flix : Repro_harness.Env.t) (env_ged : Repro_harness.Env.t) =
  let module Env = Repro_harness.Env in
  let module Apex = Repro_apex.Apex in
  let graph_flix = env_flix.Env.graph and graph_ged = env_ged.Env.graph in
  let apex_flix =
    Apex.build_adapted graph_flix ~workload:env_flix.Env.workload ~min_support:0.005
  in
  let apex_ged = Apex.build_adapted graph_ged ~workload:env_ged.Env.workload ~min_support:0.005 in
  let sdg_flix = Repro_baselines.Dataguide.build graph_flix in
  let fabric_flix = Repro_baselines.Index_fabric.build graph_flix in
  let doc = Repro_datagen.Dataset.generate_document spec_flix in
  let xml_text = Repro_xml.Xml_print.to_string doc in
  let q1 i = env_flix.Env.q1.(i mod Array.length env_flix.Env.q1) in
  [ (* Table 1: substrate kernels *)
    Test.make ~name:"table1/xml_parse" (Staged.stage (fun () -> ignore (Repro_xml.Xml_parser.parse_string xml_text)));
    Test.make ~name:"table1/graph_encode"
      (Staged.stage (fun () -> ignore (Repro_datagen.Flixgen.to_graph doc)));
    (* Table 2: index construction *)
    Test.make ~name:"table2/apex0_build" (Staged.stage (fun () -> ignore (Apex.build graph_flix)));
    Test.make ~name:"table2/apex_refresh"
      (Staged.stage (fun () ->
           let a = Apex.build graph_flix in
           Apex.refresh a ~workload:env_flix.Env.workload ~min_support:0.005));
    Test.make ~name:"table2/dataguide_build"
      (Staged.stage (fun () -> ignore (Repro_baselines.Dataguide.build graph_flix)));
    Test.make ~name:"table2/one_index_build"
      (Staged.stage (fun () -> ignore (Repro_baselines.One_index.build graph_flix)));
    Test.make ~name:"table2/fabric_build"
      (Staged.stage (fun () -> ignore (Repro_baselines.Index_fabric.build graph_flix)));
    (* Figure 13: QTYPE1 evaluation *)
    Test.make ~name:"fig13/apex_q1_flix"
      (Staged.stage
         (let i = ref 0 in
          fun () ->
            incr i;
            ignore (Repro_apex.Apex_query.eval_query apex_flix (q1 !i))));
    Test.make ~name:"fig13/sdg_q1_flix"
      (Staged.stage
         (let i = ref 0 in
          fun () ->
            incr i;
            ignore (Repro_baselines.Summary_index.eval_query sdg_flix (q1 !i))));
    Test.make ~name:"fig13/apex_q1_ged"
      (Staged.stage
         (let i = ref 0 in
          fun () ->
            incr i;
            ignore
              (Repro_apex.Apex_query.eval_query apex_ged
                 env_ged.Env.q1.(!i mod Array.length env_ged.Env.q1))));
    (* Figure 14: QTYPE2 evaluation *)
    Test.make ~name:"fig14/apex_q2_flix"
      (Staged.stage
         (let i = ref 0 in
          fun () ->
            incr i;
            ignore
              (Repro_apex.Apex_query.eval_query apex_flix
                 env_flix.Env.q2.(!i mod Array.length env_flix.Env.q2))));
    Test.make ~name:"fig14/sdg_q2_flix"
      (Staged.stage
         (let i = ref 0 in
          fun () ->
            incr i;
            ignore
              (Repro_baselines.Summary_index.eval_query sdg_flix
                 env_flix.Env.q2.(!i mod Array.length env_flix.Env.q2))));
    (* Figure 15: QTYPE3 evaluation *)
    Test.make ~name:"fig15/apex_q3_flix"
      (Staged.stage
         (let i = ref 0 in
          fun () ->
            incr i;
            ignore
              (Repro_apex.Apex_query.eval_query ~table:env_flix.Env.table apex_flix
                 env_flix.Env.q3.(!i mod Array.length env_flix.Env.q3))));
    Test.make ~name:"fig15/fabric_q3_flix"
      (Staged.stage
         (let i = ref 0 in
          fun () ->
            incr i;
            match
              Repro_baselines.Index_fabric.eval_query fabric_flix
                env_flix.Env.q3.(!i mod Array.length env_flix.Env.q3)
            with
            | Some r -> ignore r
            | None -> ()));
    (* xpath layer *)
    Test.make ~name:"xpath/parse"
      (Staged.stage (fun () ->
           ignore (Repro_xpath.Xpath_parser.parse "//movie[video]/cast/leadcast[1]/castname")));
    Test.make ~name:"xpath/planned_exec"
      (Staged.stage
         (let paths =
            Array.map Repro_xpath.Xpath_parser.parse_exn
              [| "//movie/title"; "//movie/cast/*"; "//movie[video]/title" |]
          in
          let i = ref 0 in
          fun () ->
            incr i;
            ignore
              (Repro_xpath.Xpath_plan.execute apex_flix paths.(!i mod Array.length paths))));
    (* storage: B+-tree probe vs heap-table probe *)
    Test.make ~name:"storage/btree_find"
      (Staged.stage
         (let pager = Repro_storage.Pager.create () in
          let pool = Repro_storage.Buffer_pool.create pager ~capacity:256 in
          let btree = Repro_storage.Btree.create pool in
          Repro_storage.Data_table.iter env_flix.Env.table (fun nid v ->
              Repro_storage.Btree.insert btree nid v);
          let i = ref 0 in
          fun () ->
            i := (!i + 7919) land 0xFFFF;
            ignore (Repro_storage.Btree.find btree !i)));
    Test.make ~name:"storage/heap_table_lookup"
      (Staged.stage
         (let i = ref 0 in
          fun () ->
            i := (!i + 7919) land 0xFFFF;
            ignore (Repro_storage.Data_table.lookup env_flix.Env.table !i)));
    (* join engine kernels: gallop vs linear intersection on skewed sizes,
       k-way heap union vs pairwise, range semijoin vs endpoint-sort join *)
    Test.make ~name:"join/inter_gallop_skewed"
      (Staged.stage
         (let small = Array.init 32 (fun i -> i * 3_001) in
          let large = Array.init 100_000 (fun i -> i * 3) in
          fun () -> ignore (Repro_util.Int_sorted.inter small large)));
    Test.make ~name:"join/inter_linear_skewed"
      (Staged.stage
         (let small = Array.init 32 (fun i -> i * 3_001) in
          let large = Array.init 100_000 (fun i -> i * 3) in
          fun () -> ignore (Repro_util.Int_sorted.inter_linear small large)));
    Test.make ~name:"join/union_many_kway"
      (Staged.stage
         (let sets = List.init 12 (fun k -> Array.init 4_000 (fun i -> (i * 13) + k)) in
          fun () -> ignore (Repro_util.Int_sorted.union_many sets)));
    Test.make ~name:"join/union_many_pairwise"
      (Staged.stage
         (let sets = List.init 12 (fun k -> Array.init 4_000 (fun i -> (i * 13) + k)) in
          fun () -> ignore (Repro_util.Int_sorted.union_many_pairwise sets)));
    Test.make ~name:"join/semijoin_endpoints"
      (Staged.stage
         (let module Edge_set = Repro_graph.Edge_set in
          let edges =
            Edge_set.of_packed_array
              (Array.init 50_000 (fun i -> Edge_set.pack (i / 5) (i mod 5 * 7919 mod 100_000)))
          in
          let frontier = Array.init 500 (fun i -> i * 17) in
          fun () -> ignore (Edge_set.semijoin_endpoints edges frontier)));
    (* ablation: mining *)
    Test.make ~name:"ablation/mining_naive"
      (Staged.stage (fun () ->
           ignore (Repro_mining.Path_miner.frequent ~min_support:0.005 env_flix.Env.workload)));
    Test.make ~name:"ablation/mining_apriori"
      (Staged.stage (fun () ->
           ignore (Repro_mining.Apriori.frequent ~min_support:0.005 env_flix.Env.workload)))
  ]

let run () =
  print_endline "preparing micro-benchmark environments (Flix01, Ged01)...";
  let env_flix, env_ged = prepare () in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.75) ~kde:(Some 1000) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"apex" ~fmt:"%s %s" (tests env_flix env_ged))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "\n-- micro-benchmarks (ns/op, OLS on monotonic clock) --";
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-28s %12.0f ns/op\n" name est
      | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
    (List.sort compare rows)
