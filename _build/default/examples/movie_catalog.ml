(* The paper's running example: a movie database with actors, directors and
   movies cross-referenced through ID/IDREF attributes (Figure 1), indexed
   by APEX, the strong DataGuide and the 1-index, with the navigation-cost
   comparison of Section 4's query q1: //actor/name.

   Run with:  dune exec examples/movie_catalog.exe *)

let xml =
  {|<MovieDB>
      <actor id="a1" movie="m1"><name>Kevin</name></actor>
      <actor id="a2" movie="m1"><name>Jeanne</name></actor>
      <director id="d1">
        <name>Reynolds</name>
        <movie id="m1" actor="a1 a2"><title>Waterworld</title></movie>
      </director>
      <movie id="m2" actor="a2"><title>Backlot</title></movie>
    </MovieDB>|}

let () =
  let doc = Repro_xml.Xml_parser.parse_string xml in
  let graph = Repro_graph.Data_graph.of_document ~idref_attrs:[ "movie"; "actor" ] doc in
  Format.printf "MovieDB graph: %a@.@." Repro_graph.Data_graph.pp_stats graph;

  (* T(p): the edge sets of Definition 7 *)
  let labels = Repro_graph.Data_graph.labels graph in
  let t path_text =
    match Repro_pathexpr.Label_path.of_string labels path_text with
    | Some p ->
      Format.printf "T(%s) = %a@." path_text Repro_graph.Edge_set.pp
        (Repro_graph.Data_graph.reachable_by_label_path graph p)
    | None -> Printf.printf "T(%s) = {}\n" path_text
  in
  t "actor.name";
  t "name";
  t "title";
  print_newline ();

  (* the three indexes *)
  let apex = Repro_apex.Apex.build graph in
  let dataguide = Repro_baselines.Dataguide.build graph in
  let one_index = Repro_baselines.One_index.build graph in
  let n, e = Repro_apex.Apex.stats apex in
  Printf.printf "APEX0:     %d nodes, %d edges\n" n e;
  let n, e = Repro_baselines.Summary_index.stats dataguide in
  Printf.printf "DataGuide: %d nodes, %d edges\n" n e;
  let n, e = Repro_baselines.Summary_index.stats one_index in
  Printf.printf "1-index:   %d nodes, %d edges\n\n" n e;

  (* q1 from the paper: //actor/name — APEX answers from one reverse
     hash-tree lookup, the DataGuide must navigate its whole structure *)
  let q = Repro_pathexpr.Query.Qtype1 [ "actor"; "name" ] in
  let apex_cost = Repro_storage.Cost.create () in
  let apex_result = Repro_apex.Apex_query.eval_query ~cost:apex_cost apex q in
  let dg_cost = Repro_storage.Cost.create () in
  let dg_result = Repro_baselines.Summary_index.eval_query ~cost:dg_cost dataguide q in
  assert (apex_result = dg_result);
  Printf.printf "q1 = //actor/name -> %d results (both indexes agree)\n"
    (Array.length apex_result);
  Printf.printf "  APEX:      %d hash probes, %d index edge lookups\n"
    apex_cost.Repro_storage.Cost.hash_probes apex_cost.Repro_storage.Cost.index_edge_lookups;
  Printf.printf "  DataGuide: %d hash probes, %d index edge lookups\n"
    dg_cost.Repro_storage.Cost.hash_probes dg_cost.Repro_storage.Cost.index_edge_lookups;

  (* dereference query through the reference relationship *)
  (match Repro_pathexpr.Query.parse "//movie/@actor=>actor/name" with
   | Ok q ->
     let r = Repro_apex.Apex_query.eval_query apex q in
     Printf.printf "\n//movie/@actor=>actor/name -> %d actor names via references\n"
       (Array.length r)
   | Error m -> Printf.printf "parse error: %s\n" m);

  (* partial-matching with the descendant axis *)
  (match Repro_pathexpr.Query.parse "//director//title" with
   | Ok q ->
     let r = Repro_apex.Apex_query.eval_query apex q in
     Printf.printf "//director//title          -> %d titles under directors\n" (Array.length r)
   | Error m -> Printf.printf "parse error: %s\n" m)
