(* Workload adaptation: how APEX changes shape and query cost as the
   minimum support varies, and how it follows a shifting workload through
   incremental refreshes — a miniature of the paper's Figure 13 story on a
   FlixML-style dataset.

   Run with:  dune exec examples/workload_adaptation.exe *)

module Env = Repro_harness.Env
module Apex = Repro_apex.Apex

let () =
  let spec = Option.get (Repro_datagen.Dataset.by_name "Flix01") in
  let env = Env.prepare ~scale:0.5 ~n_q1:1000 ~n_q2:50 ~n_q3:50 spec in
  let stats = Repro_graph.Graph_stats.compute env.Env.graph in
  Printf.printf "dataset %s (x0.5): %d nodes, %d edges, %d labels\n\n" spec.Repro_datagen.Dataset.name
    stats.Repro_graph.Graph_stats.nodes stats.Repro_graph.Graph_stats.edges
    stats.Repro_graph.Graph_stats.labels;

  (* sweep minSup: lower support = more frequently-used paths = larger
     index = more queries answered straight from the hash tree *)
  Printf.printf "%-12s %8s %8s %14s\n" "minSup" "nodes" "edges" "QTYPE1 cost";
  List.iter
    (fun min_support ->
      let apex = Apex.build_adapted env.Env.graph ~workload:env.Env.workload ~min_support in
      Apex.materialize apex env.Env.pool;
      let m =
        Repro_harness.Measure.run env.Env.q1 (fun ~cost q ->
            Repro_apex.Apex_query.eval_query ~cost ~table:env.Env.table apex q)
      in
      let nodes, edges = Apex.stats apex in
      Printf.printf "%-12g %8d %8d %14.0f\n" min_support nodes edges
        (Repro_harness.Measure.weighted m))
    [ 0.002; 0.005; 0.01; 0.05; 0.5 ];

  (* incremental update: adapt to one workload, then let the workload shift
     and refresh — the index follows without a rebuild *)
  print_newline ();
  let w = Array.of_list env.Env.workload in
  let half = Array.length w / 2 in
  let w1 = Array.to_list (Array.sub w 0 half) in
  let w2 = Array.to_list (Array.sub w half (Array.length w - half)) in
  let apex = Apex.build_adapted env.Env.graph ~workload:w1 ~min_support:0.005 in
  let n1, _ = Apex.stats apex in
  Printf.printf "adapted to workload #1: %d nodes\n" n1;
  Apex.refresh apex ~workload:w2 ~min_support:0.005;
  let n2, _ = Apex.stats apex in
  Printf.printf "refreshed to workload #2: %d nodes (incremental, no rebuild)\n" n2;
  (* the refreshed index is indistinguishable from one built fresh *)
  let fresh = Apex.build_adapted env.Env.graph ~workload:w2 ~min_support:0.005 in
  let a = Repro_apex.Apex_spec.apex_extents apex in
  let b = Repro_apex.Apex_spec.apex_extents fresh in
  Printf.printf "incremental = fresh rebuild: %b\n"
    (List.length a = List.length b
    && List.for_all2
         (fun (p1, e1) (p2, e2) ->
           Repro_pathexpr.Label_path.equal p1 p2 && Repro_graph.Edge_set.equal e1 e2)
         a b)
