(* A self-tuning document store: queries stream in, the workload log fills,
   and the index periodically re-tunes itself — watch the per-query cost of
   the hot path drop after the first automatic refresh, and recover after
   the interest shifts.

   Run with:  dune exec examples/self_tuning_store.exe *)

module Env = Repro_harness.Env
module Query = Repro_pathexpr.Query
module Cost = Repro_storage.Cost
module Self_tuning = Repro_adaptive.Self_tuning

let () =
  let spec = Option.get (Repro_datagen.Dataset.by_name "Ged01") in
  let env = Env.prepare ~scale:0.5 ~n_q1:100 ~n_q2:10 ~n_q3:10 spec in
  let st =
    Self_tuning.create ~log_capacity:200 ~refresh_every:100 ~min_support:0.02
      ~pool:env.Env.pool env.Env.graph
  in
  let hot = Result.get_ok (Query.parse "//INDI/BIRT/DATE") in
  let cold = Result.get_ok (Query.parse "//FAM/MARR/PLAC") in
  let cost_of q =
    let cost = Cost.create () in
    ignore (Self_tuning.query ~cost ~table:env.Env.table st q);
    Cost.weighted_total cost
  in
  Printf.printf "phase 1: //INDI/BIRT/DATE is hot (9 of every 10 queries)\n";
  Printf.printf "%-10s %14s %14s %10s\n" "query #" "hot cost" "cold cost" "refreshes";
  for batch = 1 to 4 do
    let hot_cost = ref 0.0 and cold_cost = ref 0.0 in
    for i = 1 to 50 do
      if i mod 10 = 0 then cold_cost := cost_of cold else hot_cost := cost_of hot
    done;
    Printf.printf "%-10d %14.2f %14.2f %10d\n" (batch * 50) (!hot_cost /. 45.)
      (!cold_cost /. 5.) (Self_tuning.refreshes st)
  done;
  Printf.printf "\nphase 2: interest shifts to //FAM/MARR/PLAC\n";
  for batch = 1 to 4 do
    let hot_cost = ref 0.0 and cold_cost = ref 0.0 in
    for i = 1 to 50 do
      if i mod 10 = 0 then hot_cost := cost_of hot else cold_cost := cost_of cold
    done;
    Printf.printf "%-10d %14.2f %14.2f %10d\n"
      (200 + (batch * 50))
      (!hot_cost /. 5.) (!cold_cost /. 45.) (Self_tuning.refreshes st)
  done;
  let nodes, edges = Repro_apex.Apex.stats (Self_tuning.apex st) in
  Printf.printf "\nfinal index: %d nodes, %d edges; %d entries logged, %d refreshes\n" nodes edges
    (Repro_workload.Query_log.total_recorded (Self_tuning.log st))
    (Self_tuning.refreshes st)
