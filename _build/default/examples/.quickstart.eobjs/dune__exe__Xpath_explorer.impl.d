examples/xpath_explorer.ml: Array List Option Printf Repro_apex Repro_datagen Repro_graph Repro_harness Repro_storage Repro_xpath Xpath_eval Xpath_parser Xpath_plan
