examples/movie_catalog.ml: Array Format Printf Repro_apex Repro_baselines Repro_graph Repro_pathexpr Repro_storage Repro_xml
