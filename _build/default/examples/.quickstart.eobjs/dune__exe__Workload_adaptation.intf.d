examples/workload_adaptation.mli:
