examples/genealogy_search.mli:
