examples/quickstart.ml: Array Format Printf Repro_apex Repro_graph Repro_pathexpr Repro_xml
