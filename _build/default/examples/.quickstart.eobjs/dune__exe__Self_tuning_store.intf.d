examples/self_tuning_store.mli:
