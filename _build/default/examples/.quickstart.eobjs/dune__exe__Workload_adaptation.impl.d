examples/workload_adaptation.ml: Array List Option Printf Repro_apex Repro_datagen Repro_graph Repro_harness Repro_pathexpr
