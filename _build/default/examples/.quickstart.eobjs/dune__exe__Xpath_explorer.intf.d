examples/xpath_explorer.mli:
