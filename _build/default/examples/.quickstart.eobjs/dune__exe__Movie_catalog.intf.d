examples/movie_catalog.mli:
