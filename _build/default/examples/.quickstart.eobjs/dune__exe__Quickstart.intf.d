examples/quickstart.mli:
