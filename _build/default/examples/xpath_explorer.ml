(* The XPath layer: parse richer path expressions, see how the planner
   routes them over APEX, and materialize results back into XML.

   Run with:  dune exec examples/xpath_explorer.exe *)

module Env = Repro_harness.Env
open Repro_xpath

let () =
  let spec = Option.get (Repro_datagen.Dataset.by_name "Flix01") in
  let env = Env.prepare ~scale:0.3 ~n_q1:500 ~n_q2:50 ~n_q3:50 spec in
  let g = env.Env.graph in
  let apex =
    Repro_apex.Apex.build_adapted g ~workload:env.Env.workload ~min_support:0.005
  in
  Repro_apex.Apex.materialize apex env.Env.pool;

  Printf.printf "%-44s %-14s %8s %10s\n" "xpath" "plan" "results" "cost";
  List.iter
    (fun text ->
      match Xpath_parser.parse text with
      | Error m -> Printf.printf "%-44s parse error: %s\n" text m
      | Ok path ->
        let plan = Xpath_plan.describe (Xpath_plan.plan g path) in
        let cost = Repro_storage.Cost.create () in
        let result = Xpath_plan.execute ~cost ~table:env.Env.table apex path in
        (* the planner is exact: always agrees with direct evaluation *)
        assert (result = Xpath_eval.eval g path);
        Printf.printf "%-44s %-14s %8d %10.0f\n" text plan (Array.length result)
          (Repro_storage.Cost.weighted_total cost))
    [ "//movie/title";                        (* pure index: QTYPE1 *)
      "//movie//composer";                    (* pure index: QTYPE2 *)
      {|//genre[text()="noir"]|};             (* pure index: QTYPE3 *)
      "//movie/cast/*";                       (* seeded: index prefix + wildcard *)
      "//movie[video]/title";                 (* seeded after predicate *)
      "//movie/cast/leadcast[1]/castname";    (* positional predicate *)
      "//movie[.//laserdisc]/title";          (* nested existence predicate *)
      "/person/name"                          (* absolute: direct scan *)
    ];

  (* materialize one result subtree back to XML *)
  print_newline ();
  match Xpath_plan.execute apex (Xpath_parser.parse_exn "//movie[.//laserdisc]/title") with
  | [||] -> print_endline "no laserdisc movies in this sample"
  | results ->
    Printf.printf "first laserdisc movie title, as XML:\n%s\n"
      (Repro_graph.Subtree.to_xml_string g results.(0))
