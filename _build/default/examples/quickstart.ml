(* Quickstart: parse XML, build the data graph, index it with APEX, query.

   Run with:  dune exec examples/quickstart.exe *)

let xml =
  {|<library>
      <book id="b1"><title>A Wrinkle in Path</title><author>Meg</author></book>
      <book id="b2" sequel="b1"><title>Paths Beyond</title><author>Meg</author></book>
      <journal><title>Index Monthly</title><issue><title>Issue 1</title></issue></journal>
    </library>|}

let () =
  (* 1. parse the document and encode it as a data graph; the [sequel]
     attribute is IDREF-typed, producing an @sequel reference edge *)
  let doc = Repro_xml.Xml_parser.parse_string xml in
  let graph = Repro_graph.Data_graph.of_document ~idref_attrs:[ "sequel" ] doc in
  Format.printf "data graph: %a@." Repro_graph.Data_graph.pp_stats graph;

  (* 2. build APEX0 — the workload-free index that covers every label path
     of length up to two *)
  let apex = Repro_apex.Apex.build graph in
  let nodes, edges = Repro_apex.Apex.stats apex in
  Printf.printf "APEX0: %d nodes, %d edges\n" nodes edges;

  (* 3. evaluate path queries (results are node ids in document order) *)
  let run text =
    match Repro_pathexpr.Query.parse text with
    | Error m -> Printf.printf "%-32s parse error: %s\n" text m
    | Ok q ->
      let result = Repro_apex.Apex_query.eval_query apex q in
      Printf.printf "%-32s -> %d result(s)\n" text (Array.length result)
  in
  run "//book/title";
  run "//title";
  run "//journal//title";
  run "//book/@sequel=>book/title";
  run {|//author[text()="Meg"]|};

  (* 4. adapt the index to a workload: //book/title becomes a frequently
     used path, getting its own extent *)
  let workload =
    match
      Repro_pathexpr.Label_path.of_string (Repro_graph.Data_graph.labels graph) "book.title"
    with
    | Some p -> [ p; p; p ]
    | None -> []
  in
  Repro_apex.Apex.refresh apex ~workload ~min_support:0.5;
  let nodes', edges' = Repro_apex.Apex.stats apex in
  Printf.printf "after adapting to {book.title}: %d nodes, %d edges\n" nodes' edges';
  run "//book/title"
