(* Searching highly irregular, graph-shaped data: a GedML-style genealogy
   where individuals and families cross-reference each other densely. This
   is where the paper's Figure 13-15 gaps open up: the strong DataGuide
   grows to a large fraction of the data while APEX stays label-sized.

   Run with:  dune exec examples/genealogy_search.exe *)

module Env = Repro_harness.Env
module Cost = Repro_storage.Cost

let () =
  let spec = Option.get (Repro_datagen.Dataset.by_name "Ged01") in
  let env = Env.prepare ~scale:0.5 ~n_q1:500 ~n_q2:50 ~n_q3:50 spec in
  let graph = env.Env.graph in
  let s = Repro_graph.Graph_stats.compute graph in
  Printf.printf "genealogy (Ged01 x0.5): %d nodes, %d edges (graph-shaped: %d IDREF labels)\n\n"
    s.Repro_graph.Graph_stats.nodes s.Repro_graph.Graph_stats.edges
    s.Repro_graph.Graph_stats.idref_labels;

  (* index sizes: the irregularity tax on root-path summaries *)
  let apex = Repro_apex.Apex.build_adapted graph ~workload:env.Env.workload ~min_support:0.005 in
  Repro_apex.Apex.materialize apex env.Env.pool;
  let dataguide = Repro_baselines.Dataguide.build graph in
  Repro_baselines.Summary_index.materialize dataguide env.Env.pool;
  let one_index = Repro_baselines.One_index.build graph in
  let an, ae = Repro_apex.Apex.stats apex in
  let dn, de = Repro_baselines.Summary_index.stats dataguide in
  let on_, oe = Repro_baselines.Summary_index.stats one_index in
  Printf.printf "APEX(0.005): %6d nodes %6d edges\n" an ae;
  Printf.printf "DataGuide:   %6d nodes %6d edges  <- grows with irregularity\n" dn de;
  Printf.printf "1-index:     %6d nodes %6d edges\n\n" on_ oe;

  (* navigating references: family of an individual, spouses of a family *)
  List.iter
    (fun text ->
      match Repro_pathexpr.Query.parse text with
      | Ok q ->
        let apex_cost = Cost.create () in
        let r = Repro_apex.Apex_query.eval_query ~cost:apex_cost ~table:env.Env.table apex q in
        let dg_cost = Cost.create () in
        let r' = Repro_baselines.Summary_index.eval_query ~cost:dg_cost ~table:env.Env.table dataguide q in
        assert (r = r');
        Printf.printf "%-44s %5d results | weighted cost APEX %8.0f vs DataGuide %10.0f\n" text
          (Array.length r) (Cost.weighted_total apex_cost) (Cost.weighted_total dg_cost)
      | Error m -> Printf.printf "%s: %s\n" text m)
    [ "//INDI/@fams=>FAM/MARR/DATE";
      "//FAM/@chil=>INDI/NAME";
      "//INDI/BIRT/PLAC";
      "//INDI//DATE";
      "//FAM//PLAC";
      {|//SEX[text()="F"]|}
    ];

  (* a workload-tuned path answers straight from the hash tree *)
  print_newline ();
  let path_text = "INDI.BIRT.DATE" in
  match Repro_pathexpr.Label_path.of_string (Repro_graph.Data_graph.labels graph) path_text with
  | None -> Printf.printf "no %s path in this sample\n" path_text
  | Some p ->
    Repro_apex.Apex.refresh apex ~workload:[ p; p; p ] ~min_support:0.5;
    Repro_apex.Apex.materialize apex env.Env.pool;
    let cost = Cost.create () in
    let r =
      Repro_apex.Apex_query.eval_query ~cost apex (Repro_pathexpr.Query.Qtype1 [ "INDI"; "BIRT"; "DATE" ])
    in
    Printf.printf
      "after adapting to %s: //INDI/BIRT/DATE -> %d results with %d hash probes, %d joins\n"
      path_text (Array.length r) cost.Cost.hash_probes cost.Cost.join_edges
