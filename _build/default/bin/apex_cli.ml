(* apex-cli: command-line access to the APEX reproduction.

     apex-cli generate -d Flix01 -o flix.xml     # synthesize a dataset
     apex-cli stats -d Ged01                      # Table 1 characteristics
     apex-cli indexes -d Ged01 --minsup 0.005     # Table 2 index sizes
     apex-cli query -d Flix01 -q '//movie/title' --index apex
     apex-cli workload -d Flix01 -n 20            # sample generated queries

   Datasets are the nine named specs of Table 1 (four_tragedy, shakes_11,
   shakes_all, Flix01-03, Ged01-03); --scale shrinks them. Alternatively
   -f FILE.xml loads any XML document (with --idref naming the IDREF-typed
   attributes). *)

module Dataset = Repro_datagen.Dataset
module G = Repro_graph.Data_graph
module Apex = Repro_apex.Apex
module Query = Repro_pathexpr.Query

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let load_graph ~dataset ~file ~idref ~scale =
  match dataset, file with
  | Some name, None ->
    (match Dataset.by_name name with
     | Some spec -> Dataset.build_graph (Dataset.scaled spec scale)
     | None -> failwith (Printf.sprintf "unknown dataset %S (try: %s)" name
                           (String.concat ", " (List.map (fun s -> s.Dataset.name) Dataset.all))))
  | None, Some path ->
    let doc, subset = Repro_xml.Xml_parser.parse_string_full (read_file path) in
    (match subset, idref with
     | Some text, [] ->
       (* ID/IDREF typing straight from the document's own DTD *)
       (match Repro_xml.Dtd.parse text with
        | Ok dtd -> G.of_document_dtd dtd doc
        | Error m -> failwith (Printf.sprintf "DTD parse error in %s: %s" path m))
     | _, idref -> G.of_document ~idref_attrs:idref doc)
  | _ -> failwith "specify exactly one of -d DATASET or -f FILE"

let cmd_generate dataset output scale =
  match Dataset.by_name dataset with
  | None -> failwith (Printf.sprintf "unknown dataset %S" dataset)
  | Some spec ->
    let doc = Dataset.generate_document (Dataset.scaled spec scale) in
    let dtd = Dataset.dtd_text spec.Dataset.family in
    (match output with
     | Some path ->
       Repro_xml.Xml_print.to_file ~dtd path doc;
       Printf.printf "wrote %s (with internal DTD)\n" path
     | None -> print_string (Repro_xml.Xml_print.to_string ~dtd doc))

let cmd_stats dataset file idref scale =
  let g = load_graph ~dataset ~file ~idref ~scale in
  let s = Repro_graph.Graph_stats.compute g in
  Printf.printf "nodes   %d\nedges   %d\nlabels  %d (%d IDREF-typed)\n"
    s.Repro_graph.Graph_stats.nodes s.Repro_graph.Graph_stats.edges
    s.Repro_graph.Graph_stats.labels s.Repro_graph.Graph_stats.idref_labels

let cmd_indexes dataset file idref scale minsup n_workload =
  let g = load_graph ~dataset ~file ~idref ~scale in
  let apex0 = Apex.build g in
  let n0, e0 = Apex.stats apex0 in
  Printf.printf "APEX0       %6d nodes %6d edges\n" n0 e0;
  let rand = Random.State.make [| 4242 |] in
  let q1 = Repro_workload.Generate.qtype1 ~n:n_workload rand g in
  let workload = Repro_harness.Env.compile_workload g q1 in
  Apex.refresh apex0 ~workload ~min_support:minsup;
  let n, e = Apex.stats apex0 in
  Printf.printf "APEX(%.3g) %6d nodes %6d edges  (workload: %d queries)\n" minsup n e
    (List.length workload);
  (match Repro_baselines.Dataguide.build g with
   | dg ->
     let n, e = Repro_baselines.Summary_index.stats dg in
     Printf.printf "DataGuide   %6d nodes %6d edges\n" n e
   | exception Failure _ -> Printf.printf "DataGuide   (state explosion)\n");
  let oi = Repro_baselines.One_index.build g in
  let n, e = Repro_baselines.Summary_index.stats oi in
  Printf.printf "1-index     %6d nodes %6d edges\n" n e;
  let fab = Repro_baselines.Index_fabric.build g in
  Printf.printf "Fabric      %6d keys  %6d trie nodes %5d blocks\n"
    (Repro_baselines.Index_fabric.n_keys fab)
    (Repro_baselines.Index_fabric.n_trie_nodes fab)
    (Repro_baselines.Index_fabric.n_blocks fab)

let cmd_query dataset file idref scale query_text index minsup =
  let g = load_graph ~dataset ~file ~idref ~scale in
  let q =
    match Query.parse query_text with
    | Ok q -> q
    | Error m -> failwith (Printf.sprintf "query parse error: %s" m)
  in
  let cost = Repro_storage.Cost.create () in
  let result =
    match index with
    | "naive" -> Repro_pathexpr.Naive_eval.eval_query g q
    | "apex" | "apex0" ->
      let apex = Apex.build g in
      if String.equal index "apex" then begin
        let rand = Random.State.make [| 4242 |] in
        let q1 = Repro_workload.Generate.qtype1 ~n:500 rand g in
        Apex.refresh apex ~workload:(Repro_harness.Env.compile_workload g q1)
          ~min_support:minsup
      end;
      Repro_apex.Apex_query.eval_query ~cost apex q
    | "sdg" -> Repro_baselines.Summary_index.eval_query ~cost (Repro_baselines.Dataguide.build g) q
    | "1index" ->
      Repro_baselines.Summary_index.eval_query ~cost (Repro_baselines.One_index.build g) q
    | other -> failwith (Printf.sprintf "unknown index %S (apex, apex0, sdg, 1index, naive)" other)
  in
  Printf.printf "%d result(s)\n" (Array.length result);
  Array.iteri (fun i nid -> if i < 20 then Printf.printf "  nid %d\n" nid) result;
  if Array.length result > 20 then Printf.printf "  ... (%d more)\n" (Array.length result - 20);
  if not (String.equal index "naive") then
    Printf.printf "cost: %s\n" (Format.asprintf "%a" Repro_storage.Cost.pp cost)

let cmd_xpath dataset file idref scale path_text minsup show_xml explain =
  let g = load_graph ~dataset ~file ~idref ~scale in
  let path =
    match Repro_xpath.Xpath_parser.parse path_text with
    | Ok p -> p
    | Error m -> failwith (Printf.sprintf "xpath parse error: %s" m)
  in
  let apex = Apex.build g in
  let rand = Random.State.make [| 4242 |] in
  let q1 = Repro_workload.Generate.qtype1 ~n:500 rand g in
  Apex.refresh apex ~workload:(Repro_harness.Env.compile_workload g q1) ~min_support:minsup;
  if explain then
    Printf.printf "plan: %s\n" (Repro_xpath.Xpath_plan.describe (Repro_xpath.Xpath_plan.plan g path));
  let cost = Repro_storage.Cost.create () in
  let result = Repro_xpath.Xpath_plan.execute ~cost apex path in
  Printf.printf "%d result(s)\n" (Array.length result);
  Array.iteri
    (fun i nid ->
      if i < 10 then
        if show_xml then print_endline (Repro_graph.Subtree.to_xml_string g nid)
        else Printf.printf "  nid %d\n" nid)
    result;
  if Array.length result > 10 then Printf.printf "  ... (%d more)\n" (Array.length result - 10);
  Printf.printf "cost: %s\n" (Format.asprintf "%a" Repro_storage.Cost.pp cost)

let cmd_validate file dtd_file =
  let text = read_file file in
  let doc, subset = Repro_xml.Xml_parser.parse_string_full text in
  let dtd_text =
    match dtd_file, subset with
    | Some path, _ -> read_file path
    | None, Some s -> s
    | None, None -> failwith "no DTD: the file has no internal subset and no --dtd was given"
  in
  match Repro_xml.Dtd.parse dtd_text with
  | Error m -> failwith (Printf.sprintf "DTD parse error: %s" m)
  | Ok dtd ->
    (match Repro_xml.Dtd.validate dtd doc with
     | [] -> print_endline "valid"
     | violations ->
       List.iteri
         (fun i v ->
           if i < 25 then Printf.printf "%s: %s\n" v.Repro_xml.Dtd.path v.Repro_xml.Dtd.message)
         violations;
       if List.length violations > 25 then
         Printf.printf "... (%d more)\n" (List.length violations - 25);
       exit 1)

let cmd_workload dataset file idref scale n qtype =
  let g = load_graph ~dataset ~file ~idref ~scale in
  let rand = Random.State.make [| 4242 |] in
  let queries =
    match qtype with
    | 1 -> Repro_workload.Generate.qtype1 ~n rand g
    | 2 -> Repro_workload.Generate.qtype2 ~n rand g
    | 3 -> Repro_workload.Generate.qtype3 ~n rand g
    | _ -> failwith "--qtype must be 1, 2 or 3"
  in
  Array.iter (fun q -> print_endline (Query.to_string q)) queries

open Cmdliner

let dataset_arg =
  Arg.(value & opt (some string) None & info [ "d"; "dataset" ] ~docv:"NAME" ~doc:"Named dataset.")

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc:"XML file to load.")

let idref_arg =
  Arg.(value & opt (list string) [] & info [ "idref" ] ~doc:"IDREF-typed attribute names.")

let scale_arg = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Dataset size factor.")
let minsup_arg = Arg.(value & opt float 0.005 & info [ "minsup" ] ~doc:"Minimum support.")

let generate_cmd =
  let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output path.") in
  let dataset = Arg.(required & opt (some string) None & info [ "d"; "dataset" ] ~docv:"NAME" ~doc:"Dataset.") in
  Cmd.v (Cmd.info "generate" ~doc:"Synthesize a dataset as XML")
    Term.(const cmd_generate $ dataset $ output $ scale_arg)

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Data graph characteristics (Table 1)")
    Term.(const cmd_stats $ dataset_arg $ file_arg $ idref_arg $ scale_arg)

let indexes_cmd =
  let n_workload = Arg.(value & opt int 1000 & info [ "workload" ] ~doc:"Workload size.") in
  Cmd.v (Cmd.info "indexes" ~doc:"Index sizes (Table 2)")
    Term.(const cmd_indexes $ dataset_arg $ file_arg $ idref_arg $ scale_arg $ minsup_arg $ n_workload)

let query_cmd =
  let query_text = Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"Path query.") in
  let index = Arg.(value & opt string "apex" & info [ "index" ] ~doc:"apex, apex0, sdg, 1index or naive.") in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate a path query")
    Term.(const cmd_query $ dataset_arg $ file_arg $ idref_arg $ scale_arg $ query_text $ index $ minsup_arg)

let xpath_cmd =
  let path_text = Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"XPATH" ~doc:"XPath expression.") in
  let show_xml = Arg.(value & flag & info [ "xml" ] ~doc:"Materialize results as XML subtrees.") in
  let explain = Arg.(value & flag & info [ "explain" ] ~doc:"Print the chosen plan.") in
  Cmd.v (Cmd.info "xpath" ~doc:"Evaluate an XPath expression through the planner")
    Term.(const cmd_xpath $ dataset_arg $ file_arg $ idref_arg $ scale_arg $ path_text $ minsup_arg
          $ show_xml $ explain)

let validate_cmd =
  let file = Arg.(required & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc:"XML file.") in
  let dtd_file = Arg.(value & opt (some string) None & info [ "dtd" ] ~docv:"DTD" ~doc:"External DTD file (internal-subset syntax).") in
  Cmd.v (Cmd.info "validate" ~doc:"Validate a document against a DTD")
    Term.(const cmd_validate $ file $ dtd_file)

let workload_cmd =
  let n = Arg.(value & opt int 20 & info [ "n" ] ~doc:"Number of queries.") in
  let qtype = Arg.(value & opt int 1 & info [ "qtype" ] ~doc:"Query class (1, 2 or 3).") in
  Cmd.v (Cmd.info "workload" ~doc:"Sample generated queries")
    Term.(const cmd_workload $ dataset_arg $ file_arg $ idref_arg $ scale_arg $ n $ qtype)

let () =
  let main =
    Cmd.group (Cmd.info "apex-cli" ~doc:"APEX adaptive path index for XML data")
      [ generate_cmd; stats_cmd; indexes_cmd; query_cmd; xpath_cmd; validate_cmd; workload_cmd ]
  in
  exit (Cmd.eval main)
