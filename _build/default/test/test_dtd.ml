open Repro_xml

let parse_dtd = Dtd.parse_exn

let sample_dtd =
  {|<!ELEMENT library (book+, journal*)>
    <!ELEMENT book (title, author+, note?)>
    <!ATTLIST book id ID #REQUIRED sequel IDREF #IMPLIED kind (fiction|fact) "fiction">
    <!ELEMENT journal (title, (issue|supplement)*)>
    <!ELEMENT issue EMPTY>
    <!ATTLIST issue number NMTOKEN #REQUIRED>
    <!ELEMENT supplement ANY>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT note (#PCDATA|title)*>|}

(* --- parsing --- *)

let test_parse_declarations () =
  let dtd = parse_dtd sample_dtd in
  Alcotest.(check (list string)) "element order"
    [ "library"; "book"; "journal"; "issue"; "supplement"; "title"; "author"; "note" ]
    (Dtd.element_names dtd);
  (match Dtd.content_model dtd "issue" with
   | Some Dtd.Empty -> ()
   | _ -> Alcotest.fail "issue should be EMPTY");
  (match Dtd.content_model dtd "supplement" with
   | Some Dtd.Any -> ()
   | _ -> Alcotest.fail "supplement should be ANY");
  (match Dtd.content_model dtd "title" with
   | Some Dtd.Pcdata -> ()
   | _ -> Alcotest.fail "title should be PCDATA");
  (match Dtd.content_model dtd "note" with
   | Some (Dtd.Mixed [ "title" ]) -> ()
   | _ -> Alcotest.fail "note should be mixed")

let test_parse_attributes () =
  let dtd = parse_dtd sample_dtd in
  let atts = Dtd.attributes dtd "book" in
  Alcotest.(check int) "three attributes" 3 (List.length atts);
  Alcotest.(check (list string)) "id attrs" [ "id" ] (Dtd.id_attributes dtd);
  Alcotest.(check (list string)) "idref attrs" [ "sequel" ] (Dtd.idref_attributes dtd);
  (match List.find_opt (fun a -> a.Dtd.att_name = "kind") atts with
   | Some { Dtd.att_type = Dtd.Enumeration [ "fiction"; "fact" ]; att_default = Dtd.Default "fiction"; _ } -> ()
   | _ -> Alcotest.fail "kind should be an enumeration with default")

let test_parse_errors () =
  List.iter
    (fun text ->
      match Dtd.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error on %s" text)
    [ "<!ELEMENT a>"; "<!ELEMENT a (b>"; "<!ELEMENT a (#PCDATA|b)>"; "<!WRONG a b>";
      "<!ATTLIST a x UNKNOWN #IMPLIED>"; "<!ELEMENT a EMPTY><!ELEMENT a EMPTY>"
    ]

let test_to_string_roundtrip () =
  let dtd = parse_dtd sample_dtd in
  let dtd' = parse_dtd (Dtd.to_string dtd) in
  Alcotest.(check (list string)) "same elements" (Dtd.element_names dtd) (Dtd.element_names dtd');
  Alcotest.(check (list string)) "same idrefs" (Dtd.idref_attributes dtd) (Dtd.idref_attributes dtd');
  List.iter
    (fun name ->
      if Dtd.content_model dtd name <> Dtd.content_model dtd' name then
        Alcotest.failf "content model of %s changed" name;
      if Dtd.attributes dtd name <> Dtd.attributes dtd' name then
        Alcotest.failf "attributes of %s changed" name)
    (Dtd.element_names dtd)

(* --- validation --- *)

let validate dtd_text doc_text =
  Dtd.validate (parse_dtd dtd_text) (Xml_parser.parse_string doc_text)

let check_valid name dtd_text doc_text =
  match validate dtd_text doc_text with
  | [] -> ()
  | vs ->
    Alcotest.failf "%s: unexpected violations: %s" name
      (String.concat "; " (List.map (fun v -> v.Dtd.message) vs))

let check_invalid name ?expect dtd_text doc_text =
  match validate dtd_text doc_text, expect with
  | [], _ -> Alcotest.failf "%s: expected violations" name
  | vs, Some fragment ->
    if
      not
        (List.exists
           (fun v ->
             let m = v.Dtd.message in
             let n = String.length fragment and h = String.length m in
             let rec go i = i + n <= h && (String.sub m i n = fragment || go (i + 1)) in
             go 0)
           vs)
    then
      Alcotest.failf "%s: no violation mentions %S (got: %s)" name fragment
        (String.concat "; " (List.map (fun v -> v.Dtd.message) vs))
  | _, None -> ()

let ok_doc =
  {|<library>
      <book id="b1" sequel="b2"><title>A</title><author>X</author></book>
      <book id="b2" kind="fact"><title>B</title><author>Y</author><author>Z</author><note>see <title>A</title></note></book>
      <journal><title>J</title><issue number="i1"/><supplement><title>S</title></supplement></journal>
    </library>|}

let test_validate_ok () = check_valid "well-formed sample" sample_dtd ok_doc

let test_validate_content_models () =
  check_invalid "book without author" ~expect:"content model" sample_dtd
    {|<library><book id="b1"><title>A</title></book></library>|};
  check_invalid "book children out of order" ~expect:"content model" sample_dtd
    {|<library><book id="b1"><author>X</author><title>A</title></book></library>|};
  check_invalid "empty element with children" ~expect:"EMPTY" sample_dtd
    {|<library><book id="b1"><title>A</title><author>X</author></book>
      <journal><title>J</title><issue number="n"><title>no</title></issue></journal></library>|};
  check_invalid "undeclared element" ~expect:"not declared" sample_dtd
    {|<library><book id="b1"><title>A</title><author>X</author></book><pamphlet/></library>|};
  check_invalid "text inside element content" ~expect:"character data" sample_dtd
    {|<library><book id="b1">oops<title>A</title><author>X</author></book></library>|}

let test_validate_attributes () =
  check_invalid "missing required id" ~expect:"required attribute" sample_dtd
    {|<library><book><title>A</title><author>X</author></book></library>|};
  check_invalid "undeclared attribute" ~expect:"not declared" sample_dtd
    {|<library><book id="b1" extra="x"><title>A</title><author>X</author></book></library>|};
  check_invalid "bad enumeration value" ~expect:"not in" sample_dtd
    {|<library><book id="b1" kind="poetry"><title>A</title><author>X</author></book></library>|};
  check_invalid "duplicate id" ~expect:"duplicate ID" sample_dtd
    {|<library><book id="b1"><title>A</title><author>X</author></book>
      <book id="b1"><title>B</title><author>Y</author></book></library>|};
  check_invalid "dangling idref" ~expect:"resolves to no ID" sample_dtd
    {|<library><book id="b1" sequel="nope"><title>A</title><author>X</author></book></library>|};
  check_invalid "bad nmtoken" ~expect:"is not a token" sample_dtd
    {|<library><book id="b1"><title>A</title><author>X</author></book>
      <journal><title>J</title><issue number="has space"/></journal></library>|}

let test_validate_fixed () =
  let dtd = {|<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED "always">|} in
  check_valid "fixed ok" dtd {|<a v="always"/>|};
  check_invalid "fixed violated" ~expect:"fixed" dtd {|<a v="other"/>|}

let test_apply_defaults () =
  let dtd =
    parse_dtd
      {|<!ELEMENT a (b*)>
        <!ATTLIST a mode (x|y) "x" fixed CDATA #FIXED "f" opt CDATA #IMPLIED>
        <!ELEMENT b (#PCDATA)>
        <!ATTLIST b lang CDATA "en">|}
  in
  let doc = Xml_parser.parse_string {|<a mode="y"><b>t</b><b lang="fr">u</b></a>|} in
  let doc' = Dtd.apply_defaults dtd doc in
  Alcotest.(check (option string)) "explicit kept" (Some "y") (Xml_tree.attr doc'.root "mode");
  Alcotest.(check (option string)) "fixed added" (Some "f") (Xml_tree.attr doc'.root "fixed");
  Alcotest.(check (option string)) "implied not added" None (Xml_tree.attr doc'.root "opt");
  (match doc'.root.children with
   | [ Element b1; Element b2 ] ->
     Alcotest.(check (option string)) "default added" (Some "en") (Xml_tree.attr b1 "lang");
     Alcotest.(check (option string)) "explicit kept on b" (Some "fr") (Xml_tree.attr b2 "lang")
   | _ -> Alcotest.fail "unexpected children");
  (* defaults make the document valid against itself *)
  Alcotest.(check int) "valid after defaults" 0 (List.length (Dtd.validate dtd doc'))

(* random content particles + random words of their language: validation
   must accept every sampled word *)
let rec render_particle = function
  | Dtd.Elem n -> n
  | Dtd.Seq ps -> "(" ^ String.concat "," (List.map render_particle ps) ^ ")"
  | Dtd.Choice ps -> "(" ^ String.concat "|" (List.map render_particle ps) ^ ")"
  | Dtd.Opt p -> modifiable p ^ "?"
  | Dtd.Star p -> modifiable p ^ "*"
  | Dtd.Plus p -> modifiable p ^ "+"

(* a particle an occurrence modifier may attach to directly; stacked
   modifiers need parentheses *)
and modifiable p =
  match p with
  | Dtd.Opt _ | Dtd.Star _ | Dtd.Plus _ -> "(" ^ render_particle p ^ ")"
  | Dtd.Elem _ | Dtd.Seq _ | Dtd.Choice _ -> render_particle p

let gen_particle =
  QCheck.Gen.(
    sized_size (int_range 1 5)
      (fix (fun self n ->
           let leaf = map (fun i -> Dtd.Elem (Printf.sprintf "e%d" i)) (int_bound 3) in
           if n <= 1 then leaf
           else
             frequency
               [ (2, leaf);
                 (2, map (fun ps -> Dtd.Seq ps) (list_size (int_range 2 3) (self (n / 2))));
                 (2, map (fun ps -> Dtd.Choice ps) (list_size (int_range 2 3) (self (n / 2))));
                 (1, map (fun p -> Dtd.Opt p) (self (n - 1)));
                 (1, map (fun p -> Dtd.Star p) (self (n - 1)));
                 (1, map (fun p -> Dtd.Plus p) (self (n - 1)))
               ])))

let rec sample_word rand (p : Dtd.content_particle) =
  match p with
  | Dtd.Elem n -> [ n ]
  | Dtd.Seq ps -> List.concat_map (sample_word rand) ps
  | Dtd.Choice ps -> sample_word rand (List.nth ps (Random.State.int rand (List.length ps)))
  | Dtd.Opt p -> if Random.State.bool rand then sample_word rand p else []
  | Dtd.Star p -> List.concat (List.init (Random.State.int rand 3) (fun _ -> sample_word rand p))
  | Dtd.Plus p ->
    List.concat (List.init (1 + Random.State.int rand 2) (fun _ -> sample_word rand p))

let prop_language_words_validate =
  QCheck.Test.make ~count:300 ~name:"sampled language words satisfy the content model"
    (QCheck.make ~print:render_particle gen_particle)
    (fun particle ->
      let rand = Random.State.make [| Hashtbl.hash particle |] in
      let leaves =
        String.concat "\n" (List.init 4 (fun i -> Printf.sprintf "<!ELEMENT e%d (#PCDATA)>" i))
      in
      let dtd_text =
        Printf.sprintf "<!ELEMENT root (%s)>\n%s" (render_particle particle) leaves
      in
      match Dtd.parse dtd_text with
      | Error m -> QCheck.Test.fail_reportf "dtd did not parse: %s (%s)" m dtd_text
      | Ok dtd ->
        List.for_all
          (fun () ->
            let word = sample_word rand particle in
            let doc_text =
              "<root>" ^ String.concat "" (List.map (fun n -> "<" ^ n ^ "/>") word) ^ "</root>"
            in
            Dtd.validate dtd (Xml_parser.parse_string doc_text) = [])
          (List.init 5 (fun _ -> ())))

(* --- the dataset DTDs describe the generators exactly --- *)

let test_generated_documents_validate () =
  List.iter
    (fun spec ->
      let spec = Repro_datagen.Dataset.scaled spec 0.15 in
      let dtd = parse_dtd (Repro_datagen.Dataset.dtd_text spec.Repro_datagen.Dataset.family) in
      let doc = Repro_datagen.Dataset.generate_document spec in
      match Dtd.validate dtd doc with
      | [] -> ()
      | vs ->
        Alcotest.failf "%s: %d violations, first: %s at %s" spec.Repro_datagen.Dataset.name
          (List.length vs) (List.hd vs).Dtd.message (List.hd vs).Dtd.path)
    Repro_datagen.Dataset.small

let test_dtd_idrefs_match_registry () =
  List.iter
    (fun (family, name) ->
      let dtd = parse_dtd (Repro_datagen.Dataset.dtd_text family) in
      Alcotest.(check (list string))
        (name ^ " idref attrs")
        (List.sort compare (Repro_datagen.Dataset.idref_attrs family))
        (Dtd.idref_attributes dtd))
    [ (Repro_datagen.Dataset.Play, "play"); (Repro_datagen.Dataset.Flix, "flix");
      (Repro_datagen.Dataset.Ged, "ged")
    ]

let test_dtd_driven_graph_equals_manual () =
  let spec =
    Repro_datagen.Dataset.scaled (Option.get (Repro_datagen.Dataset.by_name "Ged01")) 0.15
  in
  let doc = Repro_datagen.Dataset.generate_document spec in
  let dtd = parse_dtd (Repro_datagen.Dataset.dtd_text spec.Repro_datagen.Dataset.family) in
  let manual =
    Repro_graph.Data_graph.of_document
      ~idref_attrs:(Repro_datagen.Dataset.idref_attrs spec.Repro_datagen.Dataset.family)
      doc
  in
  let driven = Repro_graph.Data_graph.of_document_dtd dtd doc in
  Alcotest.(check int) "nodes" (Repro_graph.Data_graph.n_nodes manual)
    (Repro_graph.Data_graph.n_nodes driven);
  Alcotest.(check int) "edges" (Repro_graph.Data_graph.n_edges manual)
    (Repro_graph.Data_graph.n_edges driven)

let test_doctype_roundtrip_through_files () =
  (* emit a document with its DTD, read it back, recover the DTD *)
  let spec =
    Repro_datagen.Dataset.scaled (Option.get (Repro_datagen.Dataset.by_name "Flix01")) 0.1
  in
  let doc = Repro_datagen.Dataset.generate_document spec in
  let dtd_text = Repro_datagen.Dataset.dtd_text Repro_datagen.Dataset.Flix in
  let text = Xml_print.to_string ~dtd:dtd_text doc in
  let doc', subset = Xml_parser.parse_string_full text in
  Alcotest.(check bool) "document intact" true (Xml_tree.equal_element doc.root doc'.root);
  match subset with
  | None -> Alcotest.fail "internal subset lost"
  | Some s ->
    let dtd = parse_dtd s in
    Alcotest.(check (list string)) "idrefs recovered"
      (List.sort compare Repro_datagen.Flixgen.idref_attrs)
      (Dtd.idref_attributes dtd);
    Alcotest.(check int) "document validates" 0 (List.length (Dtd.validate dtd doc'))

let () =
  Alcotest.run "dtd"
    [ ( "parser",
        [ Alcotest.test_case "declarations" `Quick test_parse_declarations;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip
        ] );
      ( "validation",
        [ Alcotest.test_case "valid document" `Quick test_validate_ok;
          Alcotest.test_case "content models" `Quick test_validate_content_models;
          Alcotest.test_case "attributes" `Quick test_validate_attributes;
          Alcotest.test_case "fixed attributes" `Quick test_validate_fixed;
          Alcotest.test_case "apply defaults" `Quick test_apply_defaults;
          QCheck_alcotest.to_alcotest prop_language_words_validate
        ] );
      ( "datasets",
        [ Alcotest.test_case "generated documents validate" `Slow test_generated_documents_validate;
          Alcotest.test_case "DTD idrefs = registry" `Quick test_dtd_idrefs_match_registry;
          Alcotest.test_case "DTD-driven graph = manual" `Quick test_dtd_driven_graph_equals_manual;
          Alcotest.test_case "doctype file roundtrip" `Quick test_doctype_roundtrip_through_files
        ] )
    ]
