open Repro_harness
module Dataset = Repro_datagen.Dataset
module Cost = Repro_storage.Cost

let tiny_config =
  { Experiments.quick with
    Experiments.scale = 0.05;
    datasets = [ Option.get (Dataset.by_name "Flix01"); Option.get (Dataset.by_name "Ged01") ];
    n_q1 = 120;
    n_q2 = 25;
    n_q3 = 40;
    min_sups = [ 0.005; 0.05 ]
  }

(* --- Env --- *)

let test_env_prepare () =
  let env = Env.prepare ~scale:0.05 ~n_q1:50 ~n_q2:10 ~n_q3:10 (Option.get (Dataset.by_name "Flix01")) in
  Alcotest.(check int) "q1 count" 50 (Array.length env.Env.q1);
  Alcotest.(check int) "q2 count" 10 (Array.length env.Env.q2);
  Alcotest.(check int) "q3 count" 10 (Array.length env.Env.q3);
  Alcotest.(check bool) "workload is ~20% of q1" true
    (List.length env.Env.workload >= 5 && List.length env.Env.workload <= 10);
  Alcotest.(check bool) "table has values" true (Repro_storage.Data_table.n_entries env.Env.table > 0)

let test_env_deterministic () =
  let spec = Option.get (Dataset.by_name "Flix01") in
  let e1 = Env.prepare ~scale:0.05 ~n_q1:30 ~n_q2:5 ~n_q3:5 spec in
  let e2 = Env.prepare ~scale:0.05 ~n_q1:30 ~n_q2:5 ~n_q3:5 spec in
  Alcotest.(check bool) "same queries" true (e1.Env.q1 = e2.Env.q1);
  Alcotest.(check bool) "same workload" true (e1.Env.workload = e2.Env.workload)

(* --- Measure --- *)

let test_measure_run () =
  let env = Env.prepare ~scale:0.05 ~n_q1:40 ~n_q2:5 ~n_q3:5 (Option.get (Dataset.by_name "Flix01")) in
  let apex = Repro_apex.Apex.build env.Env.graph in
  let m =
    Measure.run env.Env.q1 (fun ~cost q -> Repro_apex.Apex_query.eval_query ~cost apex q)
  in
  Alcotest.(check int) "all queries ran" 40 m.Measure.queries;
  Alcotest.(check bool) "some answered" true (m.Measure.answered > 0);
  Alcotest.(check bool) "cost accumulated" true (Cost.weighted_total m.Measure.cost > 0.0)

let test_verify_sample_catches_wrong_engine () =
  let env = Env.prepare ~scale:0.05 ~n_q1:40 ~n_q2:5 ~n_q3:5 (Option.get (Dataset.by_name "Flix01")) in
  (* a broken evaluator that always answers nothing *)
  let broken ~cost:_ _q = [||] in
  match Measure.verify_sample env.Env.graph env.Env.q1 broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected verification to fail for the broken engine"

(* --- Experiments (tiny end-to-end) --- *)

let test_experiments_end_to_end () =
  let ctx = Experiments.create_context tiny_config in
  let t1 = Experiments.table1 ctx in
  Alcotest.(check int) "table1 rows" 2 (List.length t1);
  let t2 = Experiments.table2 ctx in
  List.iter
    (fun (name, sizes) ->
      Alcotest.(check int) (name ^ " columns") 4 (List.length sizes);
      (* APEX0 never larger than APEX at the lowest minSup *)
      match sizes with
      | _sdg :: apex0 :: apex_low :: _ ->
        Alcotest.(check bool) "apex0 <= apex(0.005)" true
          (apex0.Experiments.nodes <= apex_low.Experiments.nodes)
      | _ -> Alcotest.fail "unexpected table2 shape")
    t2;
  (* figures: engines agree with the naive evaluator (verify=true) and every
     series is non-empty *)
  let f13 = Experiments.fig13 ctx in
  List.iter
    (fun (name, points) ->
      Alcotest.(check bool) (name ^ " has engines") true (List.length points >= 3))
    f13;
  let f14 = Experiments.fig14 ctx in
  Alcotest.(check int) "fig14 rows" 2 (List.length f14);
  let f15 = Experiments.fig15 ctx in
  List.iter
    (fun (name, points) ->
      Alcotest.(check bool) (name ^ " includes Fabric") true
        (List.exists (fun p -> String.equal p.Experiments.engine "Fabric") points))
    f15

let test_fig13_ged_shape () =
  (* the headline result: on irregular data APEX beats the DataGuide *)
  let cfg = { tiny_config with Experiments.datasets = [ Option.get (Dataset.by_name "Ged01") ];
                               Experiments.scale = 0.2 } in
  let ctx = Experiments.create_context cfg in
  match Experiments.fig13 ctx with
  | [ (_, points) ] ->
    let cost_of name =
      match List.find_opt (fun p -> String.equal p.Experiments.engine name) points with
      | Some p -> p.Experiments.weighted_cost
      | None -> Alcotest.failf "engine %s missing" name
    in
    let sdg = cost_of "SDG" and apex = cost_of "APEX(0.005)" in
    Alcotest.(check bool)
      (Printf.sprintf "APEX (%.0f) beats SDG (%.0f) on Ged" apex sdg)
      true (apex < sdg)
  | _ -> Alcotest.fail "expected one dataset row"

let () =
  Alcotest.run "harness"
    [ ( "env",
        [ Alcotest.test_case "prepare" `Quick test_env_prepare;
          Alcotest.test_case "deterministic" `Quick test_env_deterministic
        ] );
      ( "measure",
        [ Alcotest.test_case "run" `Quick test_measure_run;
          Alcotest.test_case "verify catches broken engine" `Quick
            test_verify_sample_catches_wrong_engine
        ] );
      ( "experiments",
        [ Alcotest.test_case "end to end" `Slow test_experiments_end_to_end;
          Alcotest.test_case "fig13 Ged shape" `Slow test_fig13_ged_shape
        ] )
    ]
