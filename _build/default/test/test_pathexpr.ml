open Repro_pathexpr
module F = Test_support.Fixtures
module G = Repro_graph.Data_graph

let query = Alcotest.testable Query.pp Query.equal

(* --- Label_path --- *)

let test_suffix () =
  Alcotest.(check bool) "proper suffix" true (Label_path.is_suffix ~suffix:[ 2; 3 ] [ 1; 2; 3 ]);
  Alcotest.(check bool) "itself" true (Label_path.is_suffix ~suffix:[ 1; 2 ] [ 1; 2 ]);
  Alcotest.(check bool) "not suffix" false (Label_path.is_suffix ~suffix:[ 1; 2 ] [ 1; 2; 3 ]);
  Alcotest.(check bool) "longer" false (Label_path.is_suffix ~suffix:[ 0; 1; 2 ] [ 1; 2 ]);
  Alcotest.(check bool) "empty suffix" true (Label_path.is_suffix ~suffix:[] [ 1 ])

let test_subpath () =
  Alcotest.(check bool) "middle" true (Label_path.is_subpath ~sub:[ 2; 3 ] [ 1; 2; 3; 4 ]);
  Alcotest.(check bool) "prefix" true (Label_path.is_subpath ~sub:[ 1; 2 ] [ 1; 2; 3 ]);
  Alcotest.(check bool) "suffix" true (Label_path.is_subpath ~sub:[ 3 ] [ 1; 2; 3 ]);
  Alcotest.(check bool) "not contiguous" false (Label_path.is_subpath ~sub:[ 1; 3 ] [ 1; 2; 3 ]);
  Alcotest.(check bool) "absent" false (Label_path.is_subpath ~sub:[ 9 ] [ 1; 2; 3 ])

let test_suffixes_subpaths () =
  Alcotest.(check (list (list int))) "suffixes" [ [ 1; 2; 3 ]; [ 2; 3 ]; [ 3 ] ]
    (Label_path.suffixes [ 1; 2; 3 ]);
  Alcotest.(check (list (list int)))
    "subpaths sorted"
    [ [ 1 ]; [ 1; 2 ]; [ 1; 2; 3 ]; [ 2 ]; [ 2; 3 ]; [ 3 ] ]
    (Label_path.subpaths [ 1; 2; 3 ]);
  (* repeated labels: no duplicate subpaths *)
  Alcotest.(check (list (list int))) "dedup" [ [ 1 ]; [ 1; 1 ] ] (Label_path.subpaths [ 1; 1 ])

let test_path_strings () =
  let g = F.movie_db () in
  let tbl = G.labels g in
  let p = F.path g [ "actor"; "name" ] in
  Alcotest.(check string) "to_string" "actor.name" (Label_path.to_string tbl p);
  (match Label_path.of_string tbl "actor.name" with
   | Some p' -> Alcotest.(check bool) "roundtrip" true (Label_path.equal p p')
   | None -> Alcotest.fail "of_string failed");
  Alcotest.(check bool) "unknown label" true (Label_path.of_string tbl "actor.nope" = None);
  Alcotest.(check bool) "empty component" true (Label_path.of_string tbl "actor..name" = None)

(* --- Query parsing --- *)

let parse_ok s =
  match Query.parse s with
  | Ok q -> q
  | Error m -> Alcotest.failf "parse %S failed: %s" s m

let test_parse_qtype1 () =
  Alcotest.check query "simple" (Query.Qtype1 [ "actor"; "name" ]) (parse_ok "//actor/name");
  Alcotest.check query "single" (Query.Qtype1 [ "name" ]) (parse_ok "//name");
  Alcotest.check query "deref"
    (Query.Qtype1 [ "actor"; "@movie"; "movie"; "title" ])
    (parse_ok "//actor/@movie=>movie/title");
  Alcotest.check query "deref as slash"
    (Query.Qtype1 [ "actor"; "@movie"; "movie" ])
    (parse_ok "//actor/@movie/movie")

let test_parse_qtype2 () =
  Alcotest.check query "pair" (Query.Qtype2 ("movie", "title")) (parse_ok "//movie//title")

let test_parse_qtype3 () =
  Alcotest.check query "quoted"
    (Query.Qtype3 ([ "movie"; "title" ], "Waterworld"))
    (parse_ok {|//movie/title[text()="Waterworld"]|});
  Alcotest.check query "unquoted"
    (Query.Qtype3 ([ "title" ], "Waterworld"))
    (parse_ok "//title[text()=Waterworld]")

let test_parse_errors () =
  List.iter
    (fun s ->
      match Query.parse s with
      | Error _ -> ()
      | Ok q -> Alcotest.failf "expected error on %S, got %s" s (Query.to_string q))
    [ "actor/name";       (* missing // *)
      "//";               (* no label *)
      "//a/";             (* trailing separator *)
      "//a//b//c";        (* QTYPE2 supports exactly two labels *)
      "//a//b/c";         (* mixing // and / *)
      "//a//b[text()=v]"; (* predicate on QTYPE2 *)
      "//a[text=v]";      (* malformed predicate *)
      "//a[text()=\"v]";  (* unterminated quote *)
      "//a]extra";        (* trailing garbage *)
      "//@=>b"            (* empty attribute name *)
    ]

let test_to_string_roundtrip () =
  List.iter
    (fun s ->
      let q = parse_ok s in
      Alcotest.check query (Printf.sprintf "roundtrip %s" s) q (parse_ok (Query.to_string q)))
    [ "//actor/name";
      "//movie//title";
      "//a/@m=>b/c";
      {|//movie/title[text()="Water world"]|}
    ]

let test_compile () =
  let g = F.movie_db () in
  let tbl = G.labels g in
  (match Query.compile tbl (Query.Qtype1 [ "actor"; "name" ]) with
   | Some (Query.C1 p) ->
     Alcotest.(check bool) "labels resolved" true
       (Label_path.equal p (F.path g [ "actor"; "name" ]))
   | _ -> Alcotest.fail "expected C1");
  Alcotest.(check bool) "unknown label -> None" true
    (Query.compile tbl (Query.Qtype1 [ "actor"; "salary" ]) = None);
  (match Query.compile tbl (Query.Qtype2 ("movie", "title")) with
   | Some (Query.C2 _) -> ()
   | _ -> Alcotest.fail "expected C2");
  (match Query.compile tbl (Query.Qtype3 ([ "title" ], "Waterworld")) with
   | Some (Query.C3 (_, v)) -> Alcotest.(check string) "value kept" "Waterworld" v
   | _ -> Alcotest.fail "expected C3")

(* --- Naive evaluation on the MovieDB fixture --- *)

let eval g s = Naive_eval.eval_query g (parse_ok s)

let test_naive_qtype1 () =
  let g = F.movie_db () in
  Alcotest.(check (array int)) "//actor/name" [| 2; 4 |] (eval g "//actor/name");
  Alcotest.(check (array int)) "//name" [| 2; 4; 8 |] (eval g "//name");
  Alcotest.(check (array int)) "//title" [| 7 |] (eval g "//title");
  Alcotest.(check (array int)) "//director/movie/title" [| 7 |] (eval g "//director/movie/title");
  Alcotest.(check (array int)) "//movie/@actor=>actor/name" [| 2; 4 |]
    (eval g "//movie/@actor=>actor/name");
  Alcotest.(check (array int)) "unknown label" [||] (eval g "//nothing")

let test_naive_qtype2 () =
  let g = F.movie_db () in
  (* //director//title: director's movie's title, via non-@ edges *)
  Alcotest.(check (array int)) "//director//title" [| 7 |] (eval g "//director//title");
  Alcotest.(check (array int)) "//director//name" [| 8 |] (eval g "//director//name");
  (* actor reaches movie only through @movie; closure must not cross it *)
  Alcotest.(check (array int)) "//actor//title blocked by deref" [||] (eval g "//actor//title");
  (* immediate child also matches the descendant axis *)
  Alcotest.(check (array int)) "//movie//title" [| 7 |] (eval g "//movie//title")

let test_naive_qtype3 () =
  let g = F.movie_db () in
  Alcotest.(check (array int)) "title = Waterworld" [| 7 |]
    (eval g {|//movie/title[text()="Waterworld"]|});
  Alcotest.(check (array int)) "title mismatch" [||] (eval g {|//movie/title[text()="Other"]|});
  Alcotest.(check (array int)) "//name[Kevin]" [| 2 |] (eval g {|//name[text()="Kevin"]|})

(* --- Simple paths + generators --- *)

let test_enumerate_small_tree () =
  let g = F.small_tree () in
  let paths = Repro_workload.Simple_paths.enumerate g in
  let strings =
    List.map (Label_path.to_string (G.labels g)) paths |> List.sort compare
  in
  Alcotest.(check (list string)) "all distinct root paths" [ "a"; "a.b"; "a.c" ] strings

let test_enumerate_cyclic_bounded () =
  let g = F.movie_db () in
  let paths = Repro_workload.Simple_paths.enumerate ~max_length:6 g in
  (* distinct, all valid *)
  let as_strings = List.map (Label_path.to_string (G.labels g)) paths in
  Alcotest.(check int) "no duplicates" (List.length as_strings)
    (List.length (List.sort_uniq compare as_strings));
  List.iter
    (fun p ->
      let full = Repro_graph.Edge_set.cardinal (G.reachable_by_label_path g p) in
      if full = 0 then
        Alcotest.failf "enumerated path %s has no instance"
          (Label_path.to_string (G.labels g) p))
    paths;
  Alcotest.(check bool) "length bounded" true (List.for_all (fun p -> List.length p <= 6) paths)

let test_enumerate_limit () =
  let g = F.movie_db () in
  let paths = Repro_workload.Simple_paths.enumerate ~max_length:12 ~limit:10 g in
  Alcotest.(check int) "limit respected" 10 (List.length paths)

let test_random_walk_valid () =
  let g = F.movie_db () in
  let rand = Random.State.make [| 42 |] in
  for _ = 1 to 100 do
    let steps = Repro_workload.Simple_paths.random_walk rand g in
    Alcotest.(check bool) "non-empty" true (steps <> []);
    (* the walk is a real data path from the root *)
    let ok, _ =
      List.fold_left
        (fun (ok, u) (l, v) ->
          let found = ref false in
          G.iter_out g u (fun l' v' -> if l = l' && v = v' then found := true);
          (ok && !found, v))
        (true, G.root g) steps
    in
    Alcotest.(check bool) "edges exist" true ok
  done

let test_generators_produce_valid_queries () =
  let g = F.movie_db () in
  let rand = Random.State.make [| 7 |] in
  let q1 = Repro_workload.Generate.qtype1 ~n:50 rand g in
  Array.iter
    (fun q ->
      match Query.compile (G.labels g) q with
      | Some (Query.C1 p) ->
        if Repro_graph.Edge_set.is_empty (G.reachable_by_label_path g p) then
          Alcotest.failf "QTYPE1 %s has no instance" (Query.to_string q)
      | _ -> Alcotest.failf "bad compile for %s" (Query.to_string q))
    q1;
  let q2 = Repro_workload.Generate.qtype2 ~n:20 rand g in
  Array.iter
    (fun q ->
      match q with
      | Query.Qtype2 (a, b) ->
        Alcotest.(check bool) "distinct labels" true (not (String.equal a b));
        Alcotest.(check bool) "no attribute labels" true (a.[0] <> '@' && b.[0] <> '@')
      | _ -> Alcotest.fail "expected Qtype2")
    q2;
  let q3 = Repro_workload.Generate.qtype3 ~n:20 rand g in
  Array.iter
    (fun q -> Alcotest.(check bool) "non-empty result" true (Array.length (Naive_eval.eval_query g q) > 0))
    q3

let test_sample () =
  let rand = Random.State.make [| 3 |] in
  let queries = Array.init 100 (fun i -> Query.Qtype1 [ string_of_int i ]) in
  let s = Repro_workload.Generate.sample rand ~fraction:0.2 queries in
  Alcotest.(check int) "20%" 20 (Array.length s);
  (* no duplicates *)
  let strings = Array.to_list (Array.map Query.to_string s) in
  Alcotest.(check int) "without replacement" 20 (List.length (List.sort_uniq compare strings))

let test_random_walk_rejects_childless_root () =
  let b = G.Builder.create () in
  let root = G.Builder.add_node b in
  let g = G.Builder.build ~root b in
  let rand = Random.State.make [| 1 |] in
  match Repro_workload.Simple_paths.random_walk rand g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_workload_stats () =
  let g = F.movie_db () in
  let rand = Random.State.make [| 5 |] in
  let q1 = Repro_workload.Generate.qtype1 ~n:120 rand g in
  let s = Repro_workload.Workload_stats.compute g q1 in
  Alcotest.(check int) "count" 120 s.Repro_workload.Workload_stats.queries;
  Alcotest.(check bool) "mean length sane" true
    (s.Repro_workload.Workload_stats.mean_length >= 1.0
    && s.Repro_workload.Workload_stats.mean_length <= 12.0);
  Alcotest.(check bool) "some dereferences" true
    (s.Repro_workload.Workload_stats.with_dereference > 0.0);
  (* some queries are simple path expressions, some are not *)
  Alcotest.(check bool) "root-anchored fraction in (0,1)" true
    (s.Repro_workload.Workload_stats.root_anchored > 0.0
    && s.Repro_workload.Workload_stats.root_anchored < 1.0)

let test_workload_stats_anchoring () =
  let g = F.movie_db () in
  (* hand-built sets with known anchoring *)
  let anchored = [| Repro_pathexpr.Query.Qtype1 [ "actor"; "name" ] |] in
  let s = Repro_workload.Workload_stats.compute g anchored in
  Alcotest.(check (float 1e-9)) "anchored" 1.0 s.Repro_workload.Workload_stats.root_anchored;
  let floating = [| Repro_pathexpr.Query.Qtype1 [ "name" ] |] in
  let s = Repro_workload.Workload_stats.compute g floating in
  (* 'name' is not a label of a root edge *)
  Alcotest.(check (float 1e-9)) "not anchored" 0.0 s.Repro_workload.Workload_stats.root_anchored

let test_deterministic_generation () =
  let g = F.movie_db () in
  let gen seed = Repro_workload.Generate.qtype1 ~n:25 (Random.State.make [| seed |]) g in
  Alcotest.(check bool) "same seed, same queries" true (gen 11 = gen 11);
  Alcotest.(check bool) "different seeds differ" true (gen 11 <> gen 12)

let () =
  Alcotest.run "pathexpr"
    [ ( "label_path",
        [ Alcotest.test_case "is_suffix" `Quick test_suffix;
          Alcotest.test_case "is_subpath" `Quick test_subpath;
          Alcotest.test_case "suffixes/subpaths" `Quick test_suffixes_subpaths;
          Alcotest.test_case "string conversion" `Quick test_path_strings
        ] );
      ( "query",
        [ Alcotest.test_case "parse QTYPE1" `Quick test_parse_qtype1;
          Alcotest.test_case "parse QTYPE2" `Quick test_parse_qtype2;
          Alcotest.test_case "parse QTYPE3" `Quick test_parse_qtype3;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
          Alcotest.test_case "compile" `Quick test_compile
        ] );
      ( "naive_eval",
        [ Alcotest.test_case "QTYPE1" `Quick test_naive_qtype1;
          Alcotest.test_case "QTYPE2" `Quick test_naive_qtype2;
          Alcotest.test_case "QTYPE3" `Quick test_naive_qtype3
        ] );
      ( "workload",
        [ Alcotest.test_case "enumerate small tree" `Quick test_enumerate_small_tree;
          Alcotest.test_case "enumerate cyclic bounded" `Quick test_enumerate_cyclic_bounded;
          Alcotest.test_case "enumerate limit" `Quick test_enumerate_limit;
          Alcotest.test_case "random walk validity" `Quick test_random_walk_valid;
          Alcotest.test_case "generators valid" `Quick test_generators_produce_valid_queries;
          Alcotest.test_case "sample" `Quick test_sample;
          Alcotest.test_case "childless root rejected" `Quick test_random_walk_rejects_childless_root;
          Alcotest.test_case "workload stats" `Quick test_workload_stats;
          Alcotest.test_case "workload stats anchoring" `Quick test_workload_stats_anchoring;
          Alcotest.test_case "deterministic" `Quick test_deterministic_generation
        ] )
    ]
