(* Document growth: Data_graph.append_subtree + Apex.extend_data. *)

module F = Test_support.Fixtures
module G = Repro_graph.Data_graph
module Edge_set = Repro_graph.Edge_set
module Query = Repro_pathexpr.Query
module Naive = Repro_pathexpr.Naive_eval
open Repro_apex

let movie_xml =
  {|<MovieDB>
      <actor id="a1" movie="m1"><name>Kevin</name></actor>
      <director id="d1">
        <name>Reynolds</name>
        <movie id="m1" actor="a1"><title>Waterworld</title></movie>
      </director>
    </MovieDB>|}

let base_graph () =
  G.of_document ~idref_attrs:[ "movie"; "actor" ]
    (Repro_xml.Xml_parser.parse_string movie_xml)

let fragment =
  Repro_xml.Xml_tree.element
    ~attrs:[ ("id", "a2"); ("movie", "m1") ]
    ~children:
      [ Repro_xml.Xml_tree.Element
          (Repro_xml.Xml_tree.element ~children:[ Repro_xml.Xml_tree.Text "Jeanne" ] "name")
      ]
    "actor"

(* --- append_subtree --- *)

let test_append_grows_graph () =
  let g = base_graph () in
  let g' =
    G.append_subtree ~idref_attrs:[ "movie"; "actor" ] g ~parent:(G.root g) fragment
  in
  (* actor + name leaf + @movie attr node *)
  Alcotest.(check int) "3 new nodes" (G.n_nodes g + 3) (G.n_nodes g');
  (* root->actor, actor->name, actor->@movie, @movie->movie *)
  Alcotest.(check int) "4 new edges" (G.n_edges g + 4) (G.n_edges g');
  (* old graph untouched *)
  Alcotest.(check int) "old node count stable" 9 (G.n_nodes g)

let test_append_resolves_old_ids () =
  let g = base_graph () in
  let g' =
    G.append_subtree ~idref_attrs:[ "movie"; "actor" ] g ~parent:(G.root g) fragment
  in
  (* the new actor's @movie reference reaches the *existing* movie's title *)
  let r = Naive.eval_query g' (Result.get_ok (Query.parse "//actor/@movie=>movie/title")) in
  Alcotest.(check int) "both actors reach the title" 1 (Array.length r);
  let names = Naive.eval_query g' (Result.get_ok (Query.parse "//actor/name")) in
  Alcotest.(check int) "two actor names now" 2 (Array.length names)

let test_append_new_ids_resolvable_later () =
  let g = base_graph () in
  let g' = G.append_subtree ~idref_attrs:[ "movie"; "actor" ] g ~parent:(G.root g) fragment in
  (* a second fragment referencing the id introduced by the first *)
  let sequel =
    Repro_xml.Xml_tree.element ~attrs:[ ("actor", "a2") ]
      ~children:
        [ Repro_xml.Xml_tree.Element
            (Repro_xml.Xml_tree.element ~children:[ Repro_xml.Xml_tree.Text "Backlot" ] "title")
        ]
      "movie"
  in
  let g'' = G.append_subtree ~idref_attrs:[ "movie"; "actor" ] g' ~parent:(G.root g') sequel in
  let r = Naive.eval_query g'' (Result.get_ok (Query.parse "//movie/@actor=>actor/name")) in
  Alcotest.(check int) "new movie references the appended actor" 2 (Array.length r)

let test_append_dangling_dropped () =
  let g = base_graph () in
  let bad =
    Repro_xml.Xml_tree.element ~attrs:[ ("movie", "nope") ]
      ~children:[ Repro_xml.Xml_tree.Element (Repro_xml.Xml_tree.element "name") ]
      "actor"
  in
  let g' = G.append_subtree ~idref_attrs:[ "movie" ] g ~parent:(G.root g) bad in
  (* actor + empty name only; no attr node for the dangling ref *)
  Alcotest.(check int) "2 new nodes" (G.n_nodes g + 2) (G.n_nodes g')

let test_append_unknown_parent () =
  let g = base_graph () in
  match G.append_subtree g ~parent:999 fragment with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- Apex.extend_data --- *)

let extents_equal a b =
  let ea = Apex_spec.apex_extents a and eb = Apex_spec.apex_extents b in
  List.length ea = List.length eb
  && List.for_all2
       (fun (p1, s1) (p2, s2) ->
         Repro_pathexpr.Label_path.equal p1 p2 && Edge_set.equal s1 s2)
       ea eb

let test_extend_data_matches_fresh () =
  let g = base_graph () in
  let workload =
    match Repro_pathexpr.Label_path.of_string (G.labels g) "actor.name" with
    | Some p -> [ p; p ]
    | None -> []
  in
  let apex = Apex.build_adapted g ~workload ~min_support:0.5 in
  let g' = G.append_subtree ~idref_attrs:[ "movie"; "actor" ] g ~parent:(G.root g) fragment in
  Apex.extend_data apex g';
  let fresh = Apex.build_adapted g' ~workload ~min_support:0.5 in
  Alcotest.(check bool) "incremental extension = fresh rebuild" true (extents_equal apex fresh)

let test_extend_data_queries_correct () =
  let g = base_graph () in
  let apex = Apex.build g in
  let g' = G.append_subtree ~idref_attrs:[ "movie"; "actor" ] g ~parent:(G.root g) fragment in
  Apex.extend_data apex g';
  List.iter
    (fun text ->
      let q = Result.get_ok (Query.parse text) in
      Alcotest.(check (array int)) text (Naive.eval_query g' q) (Apex_query.eval_query apex q))
    [ "//actor/name";
      "//name";
      "//actor/@movie=>movie/title";
      "//director//title";
      {|//name[text()="Jeanne"]|}
    ]

let test_extend_data_rejects_unrelated () =
  let g = base_graph () in
  let apex = Apex.build g in
  let smaller = F.small_tree () in
  match Apex.extend_data apex smaller with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument for a non-extension"

(* --- property: random growth keeps the index exact --- *)

let gen_fragment =
  QCheck.Gen.(
    int_range 1 3 >>= fun n_children ->
    oneofl [ "grow0"; "grow1"; "l0" ] >>= fun tag ->
    list_repeat n_children (oneofl [ "l0"; "l1"; "leafy" ]) >>= fun children ->
    pure
      (Repro_xml.Xml_tree.element
         ~children:
           (List.map
              (fun t ->
                Repro_xml.Xml_tree.Element
                  (Repro_xml.Xml_tree.element
                     ~children:[ Repro_xml.Xml_tree.Text "v" ]
                     t))
              children)
         tag))

let prop_extend_equals_fresh =
  QCheck.Test.make ~count:100 ~name:"extend_data = fresh rebuild on random growth"
    (QCheck.pair F.arb_dag (QCheck.make gen_fragment))
    (fun (spec, fragment) ->
      let g = F.dag_of_spec spec in
      let rand = Random.State.make [| Hashtbl.hash spec + 3 |] in
      let workload =
        if G.out_degree g (G.root g) = 0 then []
        else
          List.init 4 (fun _ ->
              List.map fst (Repro_workload.Simple_paths.random_walk rand ~max_length:4 g))
      in
      QCheck.assume (workload <> []);
      let parent = Random.State.int rand (G.n_nodes g) in
      let g' = G.append_subtree g ~parent fragment in
      let apex = Apex.build_adapted g ~workload ~min_support:0.4 in
      Apex.extend_data apex g';
      let fresh = Apex.build_adapted g' ~workload ~min_support:0.4 in
      extents_equal apex fresh)

let () =
  Alcotest.run "updates"
    [ ( "append_subtree",
        [ Alcotest.test_case "grows graph" `Quick test_append_grows_graph;
          Alcotest.test_case "resolves old ids" `Quick test_append_resolves_old_ids;
          Alcotest.test_case "new ids resolvable later" `Quick test_append_new_ids_resolvable_later;
          Alcotest.test_case "dangling dropped" `Quick test_append_dangling_dropped;
          Alcotest.test_case "unknown parent" `Quick test_append_unknown_parent
        ] );
      ( "extend_data",
        [ Alcotest.test_case "matches fresh rebuild" `Quick test_extend_data_matches_fresh;
          Alcotest.test_case "queries correct" `Quick test_extend_data_queries_correct;
          Alcotest.test_case "rejects non-extension" `Quick test_extend_data_rejects_unrelated
        ] );
      ( "properties", [ QCheck_alcotest.to_alcotest prop_extend_equals_fresh ] )
    ]
