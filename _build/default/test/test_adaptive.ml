module F = Test_support.Fixtures
module G = Repro_graph.Data_graph
module Query = Repro_pathexpr.Query
module Query_log = Repro_workload.Query_log
module Self_tuning = Repro_adaptive.Self_tuning

(* --- Query_log --- *)

let test_log_basics () =
  let log = Query_log.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Query_log.length log);
  Query_log.record log [ 1 ];
  Query_log.record log [ 2 ];
  Alcotest.(check int) "two entries" 2 (Query_log.length log);
  Alcotest.(check (list (list int))) "window" [ [ 1 ]; [ 2 ] ] (Query_log.to_workload log)

let test_log_window_slides () =
  let log = Query_log.create ~capacity:3 in
  List.iter (fun i -> Query_log.record log [ i ]) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "bounded" 3 (Query_log.length log);
  Alcotest.(check int) "total keeps counting" 5 (Query_log.total_recorded log);
  Alcotest.(check (list (list int))) "oldest first" [ [ 3 ]; [ 4 ]; [ 5 ] ]
    (Query_log.to_workload log)

let test_log_record_query () =
  let g = F.movie_db () in
  let labels = G.labels g in
  let log = Query_log.create ~capacity:10 in
  Query_log.record_query log labels (Query.Qtype1 [ "actor"; "name" ]);
  Query_log.record_query log labels (Query.Qtype3 ([ "title" ], "Waterworld"));
  Query_log.record_query log labels (Query.Qtype2 ("movie", "title"));
  (* skipped *)
  Query_log.record_query log labels (Query.Qtype1 [ "unknown" ]);
  (* skipped: unknown label *)
  Alcotest.(check int) "two recorded" 2 (Query_log.length log)

let test_log_clear () =
  let log = Query_log.create ~capacity:3 in
  Query_log.record log [ 1 ];
  Query_log.clear log;
  Alcotest.(check int) "cleared" 0 (Query_log.length log);
  Alcotest.(check (list (list int))) "empty window" [] (Query_log.to_workload log)

let test_log_rejects_bad_capacity () =
  match Query_log.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- Self_tuning --- *)

let test_adapts_to_hot_path () =
  let g = F.movie_db () in
  let st = Self_tuning.create ~refresh_every:10 ~min_support:0.5 g in
  let n0, _ = Repro_apex.Apex.stats (Self_tuning.apex st) in
  for _ = 1 to 12 do
    ignore (Self_tuning.query st (Query.Qtype1 [ "actor"; "name" ]))
  done;
  Alcotest.(check bool) "refreshed at least once" true (Self_tuning.refreshes st >= 1);
  let n1, _ = Repro_apex.Apex.stats (Self_tuning.apex st) in
  Alcotest.(check bool) "hot path got its own node" true (n1 > n0);
  (* actor.name is now a stored suffix: a direct hash hit *)
  let cost = Repro_storage.Cost.create () in
  ignore (Self_tuning.query ~cost st (Query.Qtype1 [ "actor"; "name" ]));
  Alcotest.(check int) "no joins" 0 cost.Repro_storage.Cost.join_edges

let test_results_never_change () =
  let g = F.movie_db () in
  let st = Self_tuning.create ~refresh_every:5 ~min_support:0.3 g in
  let reference = Repro_apex.Apex.build g in
  let queries =
    [ Query.Qtype1 [ "actor"; "name" ];
      Query.Qtype1 [ "name" ];
      Query.Qtype2 ("director", "title");
      Query.Qtype3 ([ "title" ], "Waterworld");
      Query.Qtype1 [ "movie"; "title" ]
    ]
  in
  for _ = 1 to 8 do
    List.iter
      (fun q ->
        Alcotest.(check (array int))
          (Query.to_string q)
          (Repro_apex.Apex_query.eval_query reference q)
          (Self_tuning.query st q))
      queries
  done

let test_workload_shift_ages_out () =
  let g = F.movie_db () in
  let st = Self_tuning.create ~log_capacity:20 ~refresh_every:20 ~min_support:0.5 g in
  (* phase 1: hot on actor.name *)
  for _ = 1 to 20 do
    ignore (Self_tuning.query st (Query.Qtype1 [ "actor"; "name" ]))
  done;
  let locate_exact path =
    match
      Repro_apex.Hash_tree.lookup_slot (Repro_apex.Apex.tree (Self_tuning.apex st))
        ~rev_path:(List.rev (F.path g path))
    with
    | Some slot -> Repro_apex.Hash_tree.slot_get slot <> None
    | None -> false
  in
  Alcotest.(check bool) "actor.name indexed" true (locate_exact [ "actor"; "name" ]);
  (* phase 2: interest moves entirely to movie.title; the window slides *)
  for _ = 1 to 20 do
    ignore (Self_tuning.query st (Query.Qtype1 [ "movie"; "title" ]))
  done;
  Alcotest.(check bool) "movie.title indexed" true (locate_exact [ "movie"; "title" ]);
  (* actor.name aged out: its lookup now lands on a shorter suffix *)
  let tree = Repro_apex.Apex.tree (Self_tuning.apex st) in
  (match
     Repro_apex.Hash_tree.locate tree ~rev_path:(List.rev (F.path g [ "actor"; "name" ]))
   with
   | Some (Repro_apex.Hash_tree.Approx _) -> ()
   | Some (Repro_apex.Hash_tree.Exact _) -> Alcotest.fail "actor.name should have aged out"
   | None -> Alcotest.fail "name label vanished")

let test_forced_refresh_counts () =
  let g = F.movie_db () in
  let st = Self_tuning.create ~refresh_every:1000 g in
  ignore (Self_tuning.query st (Query.Qtype1 [ "name" ]));
  Alcotest.(check int) "no periodic refresh yet" 0 (Self_tuning.refreshes st);
  Self_tuning.force_refresh st;
  Alcotest.(check int) "forced" 1 (Self_tuning.refreshes st)

let () =
  Alcotest.run "adaptive"
    [ ( "query_log",
        [ Alcotest.test_case "basics" `Quick test_log_basics;
          Alcotest.test_case "window slides" `Quick test_log_window_slides;
          Alcotest.test_case "record_query" `Quick test_log_record_query;
          Alcotest.test_case "clear" `Quick test_log_clear;
          Alcotest.test_case "bad capacity" `Quick test_log_rejects_bad_capacity
        ] );
      ( "self_tuning",
        [ Alcotest.test_case "adapts to hot path" `Quick test_adapts_to_hot_path;
          Alcotest.test_case "results never change" `Quick test_results_never_change;
          Alcotest.test_case "workload shift ages out" `Quick test_workload_shift_ages_out;
          Alcotest.test_case "forced refresh" `Quick test_forced_refresh_counts
        ] )
    ]
