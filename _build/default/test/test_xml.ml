open Repro_xml

let parse = Xml_parser.parse_string

let check_tag msg expected doc = Alcotest.(check string) msg expected doc.Xml_tree.root.tag

(* --- basic parsing --- *)

let test_empty_element () =
  let doc = parse "<a/>" in
  check_tag "tag" "a" doc;
  Alcotest.(check int) "no children" 0 (List.length doc.root.children)

let test_nested_elements () =
  let doc = parse "<a><b><c/></b><d/></a>" in
  match doc.root.children with
  | [ Element b; Element d ] ->
    Alcotest.(check string) "first child" "b" b.tag;
    Alcotest.(check string) "second child" "d" d.tag;
    (match b.children with
     | [ Element c ] -> Alcotest.(check string) "grandchild" "c" c.tag
     | _ -> Alcotest.fail "expected one element child under <b>")
  | _ -> Alcotest.fail "expected two element children"

let test_text_content () =
  let doc = parse "<a>hello <b>brave</b> world</a>" in
  Alcotest.(check string) "text" "hello brave world" (Xml_tree.text_content doc.root)

let test_attributes () =
  let doc = parse {|<a x="1" y='two' z="a&amp;b"/>|} in
  Alcotest.(check (option string)) "x" (Some "1") (Xml_tree.attr doc.root "x");
  Alcotest.(check (option string)) "y" (Some "two") (Xml_tree.attr doc.root "y");
  Alcotest.(check (option string)) "z (entity)" (Some "a&b") (Xml_tree.attr doc.root "z");
  Alcotest.(check (option string)) "missing" None (Xml_tree.attr doc.root "w")

let test_xml_decl () =
  let doc = parse {|<?xml version="1.0" encoding="UTF-8"?><a/>|} in
  Alcotest.(check (option string))
    "version" (Some "1.0")
    (List.assoc_opt "version" doc.decl);
  check_tag "root" "a" doc

let test_doctype_skipped () =
  let doc = parse {|<!DOCTYPE play SYSTEM "play.dtd"><play/>|} in
  check_tag "root" "play" doc

let test_doctype_internal_subset () =
  let doc = parse {|<!DOCTYPE a [ <!ELEMENT a (b)> <!ENTITY x "y"> ]><a><b/></a>|} in
  check_tag "root" "a" doc

let test_comments_skipped () =
  let doc = parse "<!-- head --><a><!-- inside -->text<!-- more --></a><!-- tail -->" in
  Alcotest.(check string) "text survives" "text" (Xml_tree.text_content doc.root)

let test_processing_instruction_skipped () =
  let doc = parse "<a><?target some data?><b/></a>" in
  Alcotest.(check int) "only element child" 1 (List.length doc.root.children)

let test_cdata () =
  let doc = parse "<a><![CDATA[<not> &parsed;]]></a>" in
  Alcotest.(check string) "raw cdata" "<not> &parsed;" (Xml_tree.text_content doc.root)

let test_entities_in_text () =
  let doc = parse "<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</a>" in
  Alcotest.(check string) "decoded" {|<tag> & "q" 'a'|} (Xml_tree.text_content doc.root)

let test_char_references () =
  let doc = parse "<a>&#65;&#x42;&#67;</a>" in
  Alcotest.(check string) "decoded" "ABC" (Xml_tree.text_content doc.root)

let test_char_reference_utf8 () =
  let doc = parse "<a>&#233;</a>" in
  Alcotest.(check string) "e-acute utf8" "\xC3\xA9" (Xml_tree.text_content doc.root)

let test_whitespace_only_text_dropped () =
  let doc = parse "<a>\n  <b/>\n  <c/>\n</a>" in
  Alcotest.(check int) "two children" 2 (List.length doc.root.children)

let test_deep_nesting () =
  let depth = 2000 in
  let buf = Buffer.create (depth * 7) in
  for i = 0 to depth - 1 do
    Buffer.add_string buf (Printf.sprintf "<n%d>" (i mod 7))
  done;
  Buffer.add_string buf "x";
  for i = depth - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "</n%d>" (i mod 7))
  done;
  let doc = parse (Buffer.contents buf) in
  Alcotest.(check string) "deep text" "x" (Xml_tree.text_content doc.root)

let test_doctype_capture () =
  let _, subset = Xml_parser.parse_string_full {|<!DOCTYPE a [ <!ELEMENT a EMPTY> ]><a/>|} in
  (match subset with
   | Some s -> Alcotest.(check bool) "captures declarations" true (String.length s > 10)
   | None -> Alcotest.fail "expected a captured subset");
  let _, none = Xml_parser.parse_string_full {|<!DOCTYPE a SYSTEM "a.dtd"><a/>|} in
  Alcotest.(check bool) "no internal subset" true (none = None);
  let _, none2 = Xml_parser.parse_string_full "<a/>" in
  Alcotest.(check bool) "no doctype at all" true (none2 = None)

(* --- error cases --- *)

let expect_parse_error input =
  match parse input with
  | exception Xml_parser.Parse_error _ -> ()
  | _doc -> Alcotest.fail (Printf.sprintf "expected Parse_error on %S" input)

let test_errors () =
  List.iter expect_parse_error
    [ "";
      "<a>";
      "<a></b>";
      "<a";
      "< a/>";
      "<a/><b/>";
      "<a x=1/>";
      "<a x=\"1/>";
      "<a>&unknown;</a>";
      "<a>&#xZZ;</a>";
      "<a><![CDATA[unterminated</a>";
      "<!-- unterminated <a/>";
      "text outside root"
    ]

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.equal (String.sub haystack i n) needle || go (i + 1)) in
  n = 0 || go 0

let test_mismatched_tag_message () =
  match parse "<outer><inner></wrong></outer>" with
  | exception Xml_parser.Parse_error msg ->
    Alcotest.(check bool) "mentions tags" true
      (contains_substring msg "inner" && contains_substring msg "wrong")
  | _ -> Alcotest.fail "expected Parse_error"

(* --- serialization round-trips --- *)

let test_roundtrip_simple () =
  let doc = parse {|<a x="1"><b>text &amp; more</b><c/></a>|} in
  let doc' = parse (Xml_print.to_string doc) in
  Alcotest.(check bool) "roundtrip equal" true (Xml_tree.equal_element doc.root doc'.root)

let test_escape_attr_roundtrip () =
  let e = Xml_tree.element ~attrs:[ ("v", "a<b>&\"'c") ] "t" in
  let doc = { Xml_tree.decl = []; root = e } in
  let doc' = parse (Xml_print.to_string doc) in
  Alcotest.(check (option string)) "attr survives" (Some "a<b>&\"'c") (Xml_tree.attr doc'.root "v")

let test_count_nodes () =
  let doc = parse "<a><b>t</b><c><d/></c></a>" in
  (* a, b, text, c, d *)
  Alcotest.(check int) "node count" 5 (Xml_tree.count_nodes doc)

(* --- qcheck: random tree round-trip --- *)

let gen_tag =
  QCheck.Gen.oneofl [ "alpha"; "beta"; "gamma"; "delta"; "ns:elem"; "x-1"; "_u" ]

let gen_text =
  QCheck.Gen.oneofl
    [ "plain"; "with & amp"; "less < more"; "quotes \"'"; "tabs\tand\nlines"; "caf\xC3\xA9" ]

let gen_attrs =
  QCheck.Gen.(
    list_size (int_bound 3)
      (pair (oneofl [ "id"; "name"; "ref"; "idref" ]) gen_text)
    |> map (fun kvs ->
           (* attribute names must be unique within an element *)
           let seen = Hashtbl.create 4 in
           List.filter
             (fun (k, _) ->
               if Hashtbl.mem seen k then false
               else begin
                 Hashtbl.add seen k ();
                 true
               end)
             kvs))

let rec gen_element depth =
  QCheck.Gen.(
    gen_tag >>= fun tag ->
    gen_attrs >>= fun attrs ->
    (if depth = 0 then pure []
     else
       list_size (int_bound 3)
         (frequency
            [ (2, map (fun e -> Xml_tree.Element e) (gen_element (depth - 1)));
              (1, map (fun t -> Xml_tree.Text t) gen_text)
            ]))
    >>= fun children ->
    (* the parser merges nothing but drops whitespace-only text and cannot
       distinguish adjacent text nodes; avoid generating adjacent texts *)
    let rec dedup = function
      | Xml_tree.Text _ :: Xml_tree.Text _ :: rest -> dedup (Xml_tree.Text "t" :: rest)
      | x :: rest -> x :: dedup rest
      | [] -> []
    in
    pure { Xml_tree.tag; attrs; children = dedup children })

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"serialize/parse round-trip"
    (QCheck.make (gen_element 4))
    (fun root ->
      let doc = { Xml_tree.decl = []; root } in
      let doc' = parse (Xml_print.to_string doc) in
      Xml_tree.equal_element root doc'.root)

let prop_escape_text_parses =
  QCheck.Test.make ~count:200 ~name:"escaped text decodes to original"
    QCheck.(string_of_size (QCheck.Gen.int_bound 30))
    (fun s ->
      QCheck.assume (String.for_all (fun c -> c <> '\r') s);
      String.equal (Xml_lexer.decode_references (Xml_print.escape_text s)) s)

let () =
  Alcotest.run "xml"
    [ ( "parser",
        [ Alcotest.test_case "empty element" `Quick test_empty_element;
          Alcotest.test_case "nested elements" `Quick test_nested_elements;
          Alcotest.test_case "text content" `Quick test_text_content;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "xml declaration" `Quick test_xml_decl;
          Alcotest.test_case "doctype skipped" `Quick test_doctype_skipped;
          Alcotest.test_case "doctype internal subset" `Quick test_doctype_internal_subset;
          Alcotest.test_case "comments skipped" `Quick test_comments_skipped;
          Alcotest.test_case "processing instruction" `Quick test_processing_instruction_skipped;
          Alcotest.test_case "cdata" `Quick test_cdata;
          Alcotest.test_case "entities in text" `Quick test_entities_in_text;
          Alcotest.test_case "char references" `Quick test_char_references;
          Alcotest.test_case "char reference utf8" `Quick test_char_reference_utf8;
          Alcotest.test_case "whitespace-only text dropped" `Quick test_whitespace_only_text_dropped;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "doctype capture" `Quick test_doctype_capture
        ] );
      ( "errors",
        [ Alcotest.test_case "malformed inputs rejected" `Quick test_errors;
          Alcotest.test_case "mismatched tag message" `Quick test_mismatched_tag_message
        ] );
      ( "print",
        [ Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
          Alcotest.test_case "attr escaping roundtrip" `Quick test_escape_attr_roundtrip;
          Alcotest.test_case "count_nodes" `Quick test_count_nodes
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_escape_text_parses
        ] )
    ]
