test/support/fixtures.ml: Array Data_graph Label List Printf QCheck Repro_graph String
