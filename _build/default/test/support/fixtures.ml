(* Shared graph fixtures for the test suites.

   [movie_db] mirrors the paper's running example (Figure 1): a MovieDB
   with actors, directors and movies cross-linked through @actor/@movie
   IDREF attribute nodes, making the graph cyclic.

   Node ids (Builder assigns densely in creation order):
     0 MovieDB (root)
     1 actor          MovieDB--actor-->1,  @actor node 9 --actor--> 1
     2 name leaf      1--name-->2
     3 actor          MovieDB--actor-->3,  @actor node 9 --actor--> 3
     4 name leaf      3--name-->4
     5 director       MovieDB--director-->5
     6 movie          MovieDB--movie-->6, 5--movie-->6, @movie node 10 --movie--> 6
     7 title leaf     6--title-->7
     8 name leaf      5--name-->8
     9 @actor attr    6--@actor-->9
     10 @movie attr   1--@movie-->10 *)

open Repro_graph

let movie_db () =
  let b = Data_graph.Builder.create () in
  let n v = Data_graph.Builder.add_node ?value:v b in
  let root = n None in
  let actor1 = n None in
  let name1 = n (Some "Kevin") in
  let actor2 = n None in
  let name2 = n (Some "Jeanne") in
  let director = n None in
  let movie = n None in
  let title = n (Some "Waterworld") in
  let dname = n (Some "Reynolds") in
  let at_actor = n None in
  let at_movie = n None in
  let e = Data_graph.Builder.add_edge b in
  e root "actor" actor1;
  e root "actor" actor2;
  e root "director" director;
  e root "movie" movie;
  e actor1 "name" name1;
  e actor2 "name" name2;
  e director "movie" movie;
  e director "name" dname;
  e movie "title" title;
  e movie "@actor" at_actor;
  e at_actor "actor" actor1;
  e at_actor "actor" actor2;
  e actor1 "@movie" at_movie;
  e at_movie "movie" movie;
  Data_graph.Builder.build ~root b

let label g s =
  match Label.find (Data_graph.labels g) s with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "fixture label %S not in graph" s)

let path g names = List.map (label g) names

(* A small strictly tree-shaped graph: root with two 'a' children, each with
   'b' and 'c' leaves carrying values. *)
let small_tree () =
  let b = Data_graph.Builder.create () in
  let n v = Data_graph.Builder.add_node ?value:v b in
  let root = n None in
  let a1 = n None in
  let b1 = n (Some "vb1") in
  let c1 = n (Some "vc1") in
  let a2 = n None in
  let b2 = n (Some "vb2") in
  let e = Data_graph.Builder.add_edge b in
  e root "a" a1;
  e a1 "b" b1;
  e a1 "c" c1;
  e root "a" a2;
  e a2 "b" b2;
  Data_graph.Builder.build ~root b

(* Random DAG generator for property tests: nodes 0..n-1, edges only from
   lower to higher ids so the graph is acyclic; labels drawn from a small
   alphabet so paths collide interestingly. Node 0 is the root and every
   node is reachable from it. *)
let gen_dag =
  QCheck.Gen.(
    int_range 2 14 >>= fun n ->
    int_range 2 4 >>= fun n_labels ->
    let labels = Array.init n_labels (fun i -> Printf.sprintf "l%d" i) in
    (* every node >0 gets one incoming edge from a random earlier node
       (reachability), plus a few random extra edges *)
    let gen_parent v = map (fun p -> (p, v)) (int_bound (v - 1)) in
    flatten_l (List.init (n - 1) (fun i -> gen_parent (i + 1))) >>= fun spine ->
    list_size (int_bound (2 * n))
      (int_bound (n - 1) >>= fun u ->
       int_bound (n - 1) >>= fun v ->
       pure (min u v, max u v))
    >>= fun extra ->
    let extra = List.filter (fun (u, v) -> u <> v) extra in
    flatten_l
      (List.map
         (fun (u, v) -> map (fun l -> (u, labels.(l), v)) (int_bound (n_labels - 1)))
         (spine @ extra))
    >>= fun edges ->
    pure (n, edges))

let dag_of_spec (n, edges) =
  let b = Data_graph.Builder.create () in
  let nodes = Array.init n (fun i -> Data_graph.Builder.add_node ~value:(Printf.sprintf "v%d" i) b) in
  List.iter (fun (u, l, v) -> Data_graph.Builder.add_edge b nodes.(u) l nodes.(v)) edges;
  Data_graph.Builder.build ~root:nodes.(0) b

let arb_dag =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "%d nodes; %s" n
        (String.concat ", " (List.map (fun (u, l, v) -> Printf.sprintf "%d-%s->%d" u l v) edges)))
    gen_dag
