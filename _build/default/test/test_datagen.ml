open Repro_datagen
module G = Repro_graph.Data_graph
module Stats = Repro_graph.Graph_stats

let within_pct ~pct target actual =
  let diff = abs (target - actual) in
  float_of_int diff <= float_of_int target *. (pct /. 100.)

let check_size name target actual =
  if not (within_pct ~pct:20. target actual) then
    Alcotest.failf "%s: node count %d not within 20%% of target %d" name actual target

(* --- determinism --- *)

let test_deterministic () =
  let d1 = Playgen.generate ~seed:5 ~target_nodes:2000 in
  let d2 = Playgen.generate ~seed:5 ~target_nodes:2000 in
  Alcotest.(check bool) "same seed same doc" true
    (Repro_xml.Xml_tree.equal_element d1.root d2.root);
  let d3 = Playgen.generate ~seed:6 ~target_nodes:2000 in
  Alcotest.(check bool) "different seed differs" false
    (Repro_xml.Xml_tree.equal_element d1.root d3.root)

(* --- family characteristics (scaled-down versions of Table 1) --- *)

let test_play_characteristics () =
  let g = Playgen.dataset ~seed:42 ~target_nodes:8000 in
  let s = Stats.compute g in
  check_size "play nodes" 8000 s.Stats.nodes;
  (* tree: edges = nodes - 1 *)
  Alcotest.(check int) "tree shaped" (s.Stats.nodes - 1) s.Stats.edges;
  Alcotest.(check int) "no idref labels" 0 s.Stats.idref_labels;
  Alcotest.(check bool) (Printf.sprintf "label count %d in [15, 23]" s.Stats.labels) true
    (s.Stats.labels >= 15 && s.Stats.labels <= 23)

let test_flix_characteristics () =
  let g = Flixgen.dataset ~seed:42 ~target_nodes:8000 in
  let s = Stats.compute g in
  check_size "flix nodes" 8000 s.Stats.nodes;
  (* graph-shaped but sparsely cross-referenced: a small excess of edges *)
  let excess = s.Stats.edges - (s.Stats.nodes - 1) in
  Alcotest.(check bool) (Printf.sprintf "excess edges %d in [1, nodes/20]" excess) true
    (excess >= 1 && excess <= s.Stats.nodes / 20);
  Alcotest.(check int) "3 idref labels" 3 s.Stats.idref_labels;
  Alcotest.(check bool) (Printf.sprintf "label count %d in [45, 75]" s.Stats.labels) true
    (s.Stats.labels >= 45 && s.Stats.labels <= 75)

let test_ged_characteristics () =
  let g = Gedgen.dataset ~seed:42 ~target_nodes:8000 in
  let s = Stats.compute g in
  check_size "ged nodes" 8000 s.Stats.nodes;
  (* highly cross-referenced: edges clearly exceed nodes *)
  Alcotest.(check bool)
    (Printf.sprintf "edges %d > nodes %d" s.Stats.edges s.Stats.nodes)
    true
    (float_of_int s.Stats.edges > 1.05 *. float_of_int s.Stats.nodes);
  Alcotest.(check bool) (Printf.sprintf "idref labels %d in [10, 14]" s.Stats.idref_labels) true
    (s.Stats.idref_labels >= 10 && s.Stats.idref_labels <= 14);
  Alcotest.(check bool) (Printf.sprintf "label count %d in [50, 90]" s.Stats.labels) true
    (s.Stats.labels >= 50 && s.Stats.labels <= 90)

let test_label_growth_with_size () =
  let small = Stats.compute (Gedgen.dataset ~seed:7 ~target_nodes:4000) in
  let big = Stats.compute (Gedgen.dataset ~seed:7 ~target_nodes:40000) in
  Alcotest.(check bool)
    (Printf.sprintf "labels grow: %d -> %d" small.Stats.labels big.Stats.labels)
    true
    (big.Stats.labels > small.Stats.labels)

let test_ged_is_cyclic_through_refs () =
  (* INDI --@fams--> FAM --@husb/@wife/@chil--> INDI cycles must exist *)
  let g = Gedgen.dataset ~seed:9 ~target_nodes:4000 in
  let labels = G.labels g in
  let find s = Repro_graph.Label.find labels s in
  match find "@fams", find "INDI", find "FAM" with
  | Some fams, Some indi, Some _fam ->
    let path = [ fams; Option.get (find "FAM") ] in
    ignore path;
    (* a path INDI-tagged reference reachable through @fams proves the
       cross edges resolve *)
    let through =
      G.reachable_by_label_path g [ fams; Option.get (find "FAM") ]
    in
    ignore indi;
    Alcotest.(check bool) "fams references resolve" true
      (Repro_graph.Edge_set.cardinal through > 0)
  | _ -> Alcotest.fail "expected @fams, INDI, FAM labels"

(* --- XML round trip: generated documents survive serialize/parse *)

let test_xml_roundtrip () =
  let doc = Flixgen.generate ~seed:3 ~target_nodes:1500 in
  let s = Repro_xml.Xml_print.to_string doc in
  let doc' = Repro_xml.Xml_parser.parse_string s in
  Alcotest.(check bool) "roundtrip" true (Repro_xml.Xml_tree.equal_element doc.root doc'.root);
  (* and graphs built from both are identical in shape *)
  let g = Flixgen.to_graph doc and g' = Flixgen.to_graph doc' in
  Alcotest.(check int) "same nodes" (G.n_nodes g) (G.n_nodes g');
  Alcotest.(check int) "same edges" (G.n_edges g) (G.n_edges g')

(* --- registry --- *)

let test_registry () =
  Alcotest.(check int) "nine datasets" 9 (List.length Dataset.all);
  (match Dataset.by_name "Ged02" with
   | Some spec ->
     Alcotest.(check int) "target from Table 1" 30875 spec.Dataset.target_nodes
   | None -> Alcotest.fail "Ged02 missing");
  Alcotest.(check bool) "unknown name" true (Dataset.by_name "nope" = None);
  Alcotest.(check int) "small has one per family" 3 (List.length Dataset.small)

let test_registry_build_small () =
  List.iter
    (fun spec ->
      let spec = Dataset.scaled spec 0.1 in
      let g = Dataset.build_graph spec in
      check_size spec.Dataset.name spec.Dataset.target_nodes (G.n_nodes g))
    Dataset.small

let test_scaled () =
  match Dataset.by_name "Flix01" with
  | Some spec ->
    let s = Dataset.scaled spec 0.5 in
    Alcotest.(check int) "halved" 7367 s.Dataset.target_nodes;
    Alcotest.(check string) "name kept" "Flix01" s.Dataset.name
  | None -> Alcotest.fail "Flix01 missing"

let () =
  Alcotest.run "datagen"
    [ ( "generators",
        [ Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "play characteristics" `Quick test_play_characteristics;
          Alcotest.test_case "flix characteristics" `Quick test_flix_characteristics;
          Alcotest.test_case "ged characteristics" `Quick test_ged_characteristics;
          Alcotest.test_case "label growth with size" `Slow test_label_growth_with_size;
          Alcotest.test_case "ged references resolve" `Quick test_ged_is_cyclic_through_refs;
          Alcotest.test_case "xml roundtrip" `Quick test_xml_roundtrip
        ] );
      ( "registry",
        [ Alcotest.test_case "table 1 specs" `Quick test_registry;
          Alcotest.test_case "build small" `Slow test_registry_build_small;
          Alcotest.test_case "scaled" `Quick test_scaled
        ] )
    ]
