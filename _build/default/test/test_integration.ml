(* End-to-end integration: generate XML text -> parse -> encode graph ->
   build every index -> run every query class -> all engines agree with the
   index-free evaluator. One pass per dataset family at reduced scale. *)

module G = Repro_graph.Data_graph
module Query = Repro_pathexpr.Query
module Naive = Repro_pathexpr.Naive_eval
module Env = Repro_harness.Env

let families = [ "four_tragedy"; "Flix01"; "Ged01" ]

let pipeline_graph spec =
  (* go the long way through the XML substrate: document -> text -> parse *)
  let doc = Repro_datagen.Dataset.generate_document spec in
  let text = Repro_xml.Xml_print.to_string doc in
  let reparsed = Repro_xml.Xml_parser.parse_string text in
  G.of_document
    ~idref_attrs:(Repro_datagen.Dataset.idref_attrs spec.Repro_datagen.Dataset.family)
    reparsed

let test_family name () =
  let spec =
    Repro_datagen.Dataset.scaled (Option.get (Repro_datagen.Dataset.by_name name)) 0.06
  in
  let g = pipeline_graph spec in
  (* compare with the direct build: the XML round trip must not change the
     graph *)
  let direct = Repro_datagen.Dataset.build_graph spec in
  Alcotest.(check int) "roundtrip nodes" (G.n_nodes direct) (G.n_nodes g);
  Alcotest.(check int) "roundtrip edges" (G.n_edges direct) (G.n_edges g);
  (* storage + queries *)
  let pager = Repro_storage.Pager.create () in
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:256 in
  let table = Repro_storage.Data_table.build pool g in
  let rand = Random.State.make [| 2026 |] in
  let q1 = Repro_workload.Generate.qtype1 ~n:60 rand g in
  let q2 = Repro_workload.Generate.qtype2 ~n:15 rand g in
  let q3 = Repro_workload.Generate.qtype3 ~n:20 rand g in
  let workload = Env.compile_workload g (Repro_workload.Generate.sample rand ~fraction:0.2 q1) in
  let apex = Repro_apex.Apex.build_adapted g ~workload ~min_support:0.01 in
  Repro_apex.Apex.materialize apex pool;
  let sdg = Repro_baselines.Dataguide.build g in
  Repro_baselines.Summary_index.materialize sdg pool;
  let one_index = Repro_baselines.One_index.build g in
  let fabric = Repro_baselines.Index_fabric.build g in
  let check_queries queries =
    Array.iter
      (fun q ->
        let expected = Naive.eval_query g q in
        let tag engine = Printf.sprintf "%s %s [%s]" name (Query.to_string q) engine in
        Alcotest.(check (array int)) (tag "apex") expected
          (Repro_apex.Apex_query.eval_query ~table apex q);
        Alcotest.(check (array int)) (tag "sdg") expected
          (Repro_baselines.Summary_index.eval_query ~table sdg q);
        Alcotest.(check (array int)) (tag "1idx") expected
          (Repro_baselines.Summary_index.eval_query ~table one_index q);
        match Repro_baselines.Index_fabric.eval_query fabric q with
        | Some got -> Alcotest.(check (array int)) (tag "fabric") expected got
        | None -> ())
      queries
  in
  check_queries q1;
  check_queries q2;
  check_queries q3;
  (* every QTYPE3 query must be answerable (generation guarantees) *)
  Array.iter
    (fun q ->
      if Array.length (Naive.eval_query g q) = 0 then
        Alcotest.failf "QTYPE3 %s has an empty result" (Query.to_string q))
    q3

let test_minsup_sweep_consistency () =
  (* query answers are invariant across APEX configurations *)
  let spec =
    Repro_datagen.Dataset.scaled (Option.get (Repro_datagen.Dataset.by_name "Ged01")) 0.1
  in
  let g = Repro_datagen.Dataset.build_graph spec in
  let rand = Random.State.make [| 7 |] in
  let q1 = Repro_workload.Generate.qtype1 ~n:40 rand g in
  let workload = Env.compile_workload g q1 in
  let reference = Repro_apex.Apex.build g in
  List.iter
    (fun ms ->
      let apex = Repro_apex.Apex.build_adapted g ~workload ~min_support:ms in
      Array.iter
        (fun q ->
          Alcotest.(check (array int))
            (Printf.sprintf "minSup %g: %s" ms (Query.to_string q))
            (Repro_apex.Apex_query.eval_query reference q)
            (Repro_apex.Apex_query.eval_query apex q))
        q1)
    [ 0.001; 0.01; 0.2; 0.9 ]

let () =
  Alcotest.run "integration"
    [ ( "pipeline",
        List.map (fun name -> Alcotest.test_case name `Slow (test_family name)) families );
      ( "consistency",
        [ Alcotest.test_case "minSup sweep" `Slow test_minsup_sweep_consistency ] )
    ]
