(* Save/load round-trips for whole APEX instances. *)

module F = Test_support.Fixtures
module G = Repro_graph.Data_graph
module Edge_set = Repro_graph.Edge_set
module Query = Repro_pathexpr.Query
open Repro_apex

let with_store () =
  let pager = Repro_storage.Pager.create ~page_size:512 () in
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:32 in
  (pool, Repro_storage.Extent_store.create pool)

let extents_equal a b =
  let ea = Apex_spec.apex_extents a and eb = Apex_spec.apex_extents b in
  List.length ea = List.length eb
  && List.for_all2
       (fun (p1, s1) (p2, s2) ->
         Repro_pathexpr.Label_path.equal p1 p2 && Edge_set.equal s1 s2)
       ea eb

let movie_workload g =
  [ F.path g [ "actor"; "name" ]; F.path g [ "actor"; "name" ]; F.path g [ "movie"; "title" ] ]

let test_roundtrip_apex0 () =
  let g = F.movie_db () in
  let apex = Apex.build g in
  let _, store = with_store () in
  let handle = Apex_persist.save apex store in
  let loaded = Apex_persist.load g store handle in
  Alcotest.(check bool) "extents identical" true (extents_equal apex loaded);
  Alcotest.(check bool) "stats identical" true (Apex.stats apex = Apex.stats loaded)

let test_roundtrip_adapted () =
  let g = F.movie_db () in
  let apex = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  let _, store = with_store () in
  let handle = Apex_persist.save apex store in
  let loaded = Apex_persist.load g store handle in
  Alcotest.(check bool) "extents identical" true (extents_equal apex loaded);
  Alcotest.(check bool) "invariant holds" true (Hash_tree.check_invariant (Apex.tree loaded))

let test_loaded_queries_match () =
  let g = F.movie_db () in
  let apex = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  let _, store = with_store () in
  let loaded = Apex_persist.load g store (Apex_persist.save apex store) in
  List.iter
    (fun text ->
      let q = Result.get_ok (Query.parse text) in
      Alcotest.(check (array int)) text (Apex_query.eval_query apex q)
        (Apex_query.eval_query loaded q))
    [ "//actor/name"; "//name"; "//movie//title"; "//director//name";
      {|//name[text()="Kevin"]|}; "//@movie=>movie" ]

let test_loaded_index_refreshable () =
  (* the loaded copy keeps adapting: counts/flags survive the round trip *)
  let g = F.movie_db () in
  let apex = Apex.build g in
  let _, store = with_store () in
  let loaded = Apex_persist.load g store (Apex_persist.save apex store) in
  Apex.refresh loaded ~workload:(movie_workload g) ~min_support:0.5;
  let fresh = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  Alcotest.(check bool) "refresh after load = fresh adapt" true (extents_equal loaded fresh)

let test_multiple_images_one_store () =
  let g = F.movie_db () in
  let apex0 = Apex.build g in
  let adapted = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  let _, store = with_store () in
  let h0 = Apex_persist.save apex0 store in
  let h1 = Apex_persist.save adapted store in
  Alcotest.(check bool) "first image intact" true
    (extents_equal apex0 (Apex_persist.load g store h0));
  Alcotest.(check bool) "second image intact" true
    (extents_equal adapted (Apex_persist.load g store h1))

let test_corrupt_image_rejected () =
  let g = F.movie_db () in
  let _, store = with_store () in
  let bogus = Repro_storage.Extent_store.append_ints store [| 1; 2; 3 |] in
  match Apex_persist.load g store bogus with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on a bad image"

let prop_roundtrip_on_dags =
  QCheck.Test.make ~count:100 ~name:"persist round-trip on random DAGs" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let rand = Random.State.make [| Hashtbl.hash spec + 5 |] in
      let workload =
        if G.out_degree g (G.root g) = 0 then []
        else
          List.init 4 (fun _ ->
              List.map fst (Repro_workload.Simple_paths.random_walk rand ~max_length:4 g))
      in
      QCheck.assume (workload <> []);
      let apex = Apex.build_adapted g ~workload ~min_support:0.4 in
      let _, store = with_store () in
      let loaded = Apex_persist.load g store (Apex_persist.save apex store) in
      extents_equal apex loaded)

let () =
  Alcotest.run "persist"
    [ ( "roundtrip",
        [ Alcotest.test_case "apex0" `Quick test_roundtrip_apex0;
          Alcotest.test_case "adapted" `Quick test_roundtrip_adapted;
          Alcotest.test_case "queries match" `Quick test_loaded_queries_match;
          Alcotest.test_case "refreshable after load" `Quick test_loaded_index_refreshable;
          Alcotest.test_case "multiple images" `Quick test_multiple_images_one_store;
          Alcotest.test_case "corrupt image rejected" `Quick test_corrupt_image_rejected
        ] );
      ( "properties", [ QCheck_alcotest.to_alcotest prop_roundtrip_on_dags ] )
    ]
