open Repro_storage

let with_tree ?(page_size = 256) () =
  let pager = Pager.create ~page_size () in
  let pool = Buffer_pool.create pager ~capacity:64 in
  Btree.create pool

let test_empty () =
  let t = with_tree () in
  Alcotest.(check (option string)) "find on empty" None (Btree.find t 42);
  Alcotest.(check int) "cardinal" 0 (Btree.cardinal t);
  Alcotest.(check int) "height" 1 (Btree.height t);
  Alcotest.(check (list (pair int string))) "range on empty" [] (Btree.range t ~lo:0 ~hi:100)

let test_insert_find () =
  let t = with_tree () in
  List.iter (fun k -> Btree.insert t k (Printf.sprintf "v%d" k)) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check int) "cardinal" 5 (Btree.cardinal t);
  List.iter
    (fun k ->
      Alcotest.(check (option string)) (string_of_int k) (Some (Printf.sprintf "v%d" k))
        (Btree.find t k))
    [ 1; 3; 5; 7; 9 ];
  Alcotest.(check (option string)) "missing" None (Btree.find t 4);
  Alcotest.(check bool) "mem" true (Btree.mem t 7);
  Alcotest.(check bool) "not mem" false (Btree.mem t 8)

let test_replace () =
  let t = with_tree () in
  Btree.insert t 1 "old";
  Btree.insert t 1 "new";
  Alcotest.(check int) "no duplicate" 1 (Btree.cardinal t);
  Alcotest.(check (option string)) "replaced" (Some "new") (Btree.find t 1)

let test_many_keys_split () =
  let t = with_tree ~page_size:256 () in
  let n = 2000 in
  (* insert in shuffled order *)
  let keys = Array.init n (fun i -> i) in
  let rand = Random.State.make [| 99 |] in
  for i = n - 1 downto 1 do
    let j = Random.State.int rand (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  Array.iter (fun k -> Btree.insert t k (Printf.sprintf "value-%05d" k)) keys;
  Alcotest.(check int) "cardinal" n (Btree.cardinal t);
  Alcotest.(check bool) (Printf.sprintf "height %d > 2" (Btree.height t)) true (Btree.height t > 2);
  Alcotest.(check bool) "many pages" true (Btree.n_pages t > 50);
  for k = 0 to n - 1 do
    match Btree.find t k with
    | Some v when String.equal v (Printf.sprintf "value-%05d" k) -> ()
    | Some v -> Alcotest.failf "key %d: wrong value %s" k v
    | None -> Alcotest.failf "key %d missing" k
  done

let test_range () =
  let t = with_tree () in
  List.iter (fun k -> Btree.insert t k (string_of_int (k * k))) [ 2; 4; 6; 8; 10; 12 ];
  Alcotest.(check (list (pair int string))) "inner range"
    [ (4, "16"); (6, "36"); (8, "64") ]
    (Btree.range t ~lo:3 ~hi:9);
  Alcotest.(check (list (pair int string))) "full range"
    [ (2, "4"); (4, "16"); (6, "36"); (8, "64"); (10, "100"); (12, "144") ]
    (Btree.range t ~lo:0 ~hi:100);
  Alcotest.(check (list (pair int string))) "empty band" [] (Btree.range t ~lo:13 ~hi:20);
  Alcotest.(check (list (pair int string))) "inverted" [] (Btree.range t ~lo:9 ~hi:3)

let test_iter_sorted () =
  let t = with_tree () in
  List.iter (fun k -> Btree.insert t k "x") [ 9; 2; 7; 1; 8; 3 ];
  let keys = ref [] in
  Btree.iter t (fun k _ -> keys := k :: !keys);
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 7; 8; 9 ] (List.rev !keys)

let test_cost_charged () =
  let t = with_tree ~page_size:256 () in
  for k = 0 to 999 do
    Btree.insert t k (Printf.sprintf "value-%05d" k)
  done;
  let cost = Cost.create () in
  ignore (Btree.find ~cost t 500);
  Alcotest.(check int) "descent = height pages" (Btree.height t) cost.Cost.table_pages;
  let cost2 = Cost.create () in
  ignore (Btree.range ~cost:cost2 t ~lo:0 ~hi:999);
  Alcotest.(check bool) "range touches many leaves" true
    (cost2.Cost.table_pages > cost.Cost.table_pages)

let test_payload_too_large () =
  let t = with_tree ~page_size:256 () in
  match Btree.insert t 1 (String.make 10_000 'x') with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let prop_model =
  QCheck.Test.make ~count:200 ~name:"btree = Map model"
    QCheck.(list (pair (int_bound 500) (string_of_size (QCheck.Gen.int_bound 12))))
    (fun kvs ->
      let t = with_tree () in
      let module M = Map.Make (Int) in
      let model =
        List.fold_left
          (fun m (k, v) ->
            Btree.insert t k v;
            M.add k v m)
          M.empty kvs
      in
      M.for_all (fun k v -> Btree.find t k = Some v) model
      && Btree.cardinal t = M.cardinal model
      && Btree.range t ~lo:0 ~hi:500 = M.bindings model)

let prop_range_model =
  QCheck.Test.make ~count:200 ~name:"btree range = Map filter"
    QCheck.(
      pair
        (list (pair (int_bound 300) (string_of_size (QCheck.Gen.int_bound 8))))
        (pair (int_bound 300) (int_bound 300)))
    (fun (kvs, (a, b)) ->
      let lo = min a b and hi = max a b in
      let t = with_tree () in
      let module M = Map.Make (Int) in
      let model =
        List.fold_left
          (fun m (k, v) ->
            Btree.insert t k v;
            M.add k v m)
          M.empty kvs
      in
      Btree.range t ~lo ~hi
      = M.bindings (M.filter (fun k _ -> k >= lo && k <= hi) model))

let () =
  Alcotest.run "btree"
    [ ( "basics",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "splits" `Quick test_many_keys_split;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "iter sorted" `Quick test_iter_sorted;
          Alcotest.test_case "cost charged" `Quick test_cost_charged;
          Alcotest.test_case "payload too large" `Quick test_payload_too_large
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_model;
          QCheck_alcotest.to_alcotest prop_range_model
        ] )
    ]
