test/test_apex.mli:
