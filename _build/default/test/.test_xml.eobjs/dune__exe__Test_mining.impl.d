test/test_mining.ml: Alcotest Apriori Array List Path_miner QCheck QCheck_alcotest Repro_mining Repro_pathexpr
