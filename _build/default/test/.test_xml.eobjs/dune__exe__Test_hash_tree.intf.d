test/test_hash_tree.mli:
