test/test_util.ml: Alcotest Array Int_sorted List QCheck QCheck_alcotest Repro_util Vec
