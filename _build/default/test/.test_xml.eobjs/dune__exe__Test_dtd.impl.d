test/test_dtd.ml: Alcotest Dtd Hashtbl List Option Printf QCheck QCheck_alcotest Random Repro_datagen Repro_graph Repro_xml String Xml_parser Xml_print Xml_tree
