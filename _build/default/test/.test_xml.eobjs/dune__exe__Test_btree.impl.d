test/test_btree.ml: Alcotest Array Btree Buffer_pool Cost Int List Map Pager Printf QCheck QCheck_alcotest Random Repro_storage String
