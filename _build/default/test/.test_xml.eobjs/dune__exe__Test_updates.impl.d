test/test_updates.ml: Alcotest Apex Apex_query Apex_spec Array Hashtbl List QCheck QCheck_alcotest Random Repro_apex Repro_graph Repro_pathexpr Repro_workload Repro_xml Result Test_support
