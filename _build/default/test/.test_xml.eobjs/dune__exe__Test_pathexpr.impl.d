test/test_pathexpr.ml: Alcotest Array Label_path List Naive_eval Printf Query Random Repro_graph Repro_pathexpr Repro_workload String Test_support
