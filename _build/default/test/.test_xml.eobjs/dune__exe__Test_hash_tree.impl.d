test/test_hash_tree.ml: Alcotest Gapex Hash_tree List Repro_apex Repro_graph
