test/test_harness.ml: Alcotest Array Env Experiments List Measure Option Printf Repro_apex Repro_datagen Repro_harness Repro_storage String
