test/test_graph.ml: Alcotest Data_graph Edge_set Graph_stats Label List Option QCheck QCheck_alcotest Repro_graph Repro_util Repro_xml String Subtree Test_support
