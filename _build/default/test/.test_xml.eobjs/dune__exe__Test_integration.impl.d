test/test_integration.ml: Alcotest Array List Option Printf Random Repro_apex Repro_baselines Repro_datagen Repro_graph Repro_harness Repro_pathexpr Repro_storage Repro_workload Repro_xml
