test/test_storage.ml: Alcotest Array Buffer_pool Bytes Char Cost Data_table Extent_store Io_stats List Pager Printf QCheck QCheck_alcotest Repro_graph Repro_storage Test_support
