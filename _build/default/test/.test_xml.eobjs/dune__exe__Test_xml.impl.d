test/test_xml.ml: Alcotest Buffer Hashtbl List Printf QCheck QCheck_alcotest Repro_xml String Xml_lexer Xml_parser Xml_print Xml_tree
