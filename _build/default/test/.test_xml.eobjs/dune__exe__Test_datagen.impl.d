test/test_datagen.ml: Alcotest Dataset Flixgen Gedgen List Option Playgen Printf Repro_datagen Repro_graph Repro_xml
