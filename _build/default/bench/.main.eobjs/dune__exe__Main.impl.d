bench/main.ml: Arg Cmd Cmdliner List Micro Printf Repro_datagen Repro_harness Term
