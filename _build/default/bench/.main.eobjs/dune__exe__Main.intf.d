bench/main.mli:
