type family = Play | Flix | Ged

type spec = {
  name : string;
  family : family;
  seed : int;
  target_nodes : int;
}

let all =
  [ { name = "four_tragedy"; family = Play; seed = 101; target_nodes = 22791 };
    { name = "shakes_11"; family = Play; seed = 102; target_nodes = 48818 };
    { name = "shakes_all"; family = Play; seed = 103; target_nodes = 179691 };
    { name = "Flix01"; family = Flix; seed = 201; target_nodes = 14734 };
    { name = "Flix02"; family = Flix; seed = 202; target_nodes = 41691 };
    { name = "Flix03"; family = Flix; seed = 203; target_nodes = 335401 };
    { name = "Ged01"; family = Ged; seed = 301; target_nodes = 8259 };
    { name = "Ged02"; family = Ged; seed = 302; target_nodes = 30875 };
    { name = "Ged03"; family = Ged; seed = 303; target_nodes = 381046 }
  ]

let small = List.filter (fun s -> List.mem s.name [ "four_tragedy"; "Flix01"; "Ged01" ]) all

let by_name name = List.find_opt (fun s -> String.equal s.name name) all

let idref_attrs = function
  | Play -> []
  | Flix -> Flixgen.idref_attrs
  | Ged -> Gedgen.idref_attrs

let dtd_text = function
  | Play -> Playgen.dtd
  | Flix -> Flixgen.dtd
  | Ged -> Gedgen.dtd

let generate_document spec =
  match spec.family with
  | Play -> Playgen.generate ~seed:spec.seed ~target_nodes:spec.target_nodes
  | Flix -> Flixgen.generate ~seed:spec.seed ~target_nodes:spec.target_nodes
  | Ged -> Gedgen.generate ~seed:spec.seed ~target_nodes:spec.target_nodes

let build_graph spec =
  let doc = generate_document spec in
  match spec.family with
  | Play -> Playgen.to_graph doc
  | Flix -> Flixgen.to_graph doc
  | Ged -> Gedgen.to_graph doc

let scaled spec f =
  if f <= 0.0 then invalid_arg "Dataset.scaled: factor must be positive";
  { spec with target_nodes = max 200 (int_of_float (float_of_int spec.target_nodes *. f)) }
