module T = Repro_xml.Xml_tree

let el = T.element
let txt s = T.Text s

type ctx = {
  rand : Random.State.t;
  mutable nodes : int;
  mutable n_people : int;
  mutable n_studios : int;
  mutable n_movies : int;
}

let mk ctx ?(attrs = []) tag children =
  (* the element itself + one node per non-id attribute (value leaf or IDREF
     attribute node) *)
  let counted = List.length (List.filter (fun (k, _) -> k <> "id") attrs) in
  ctx.nodes <- ctx.nodes + 1 + counted;
  T.Element (el ~attrs ~children tag)

let leaf ctx tag s = mk ctx tag [ txt s ]

let opt ctx p f = if Vocab.chance ctx.rand p then [ f ctx ] else []

let person ctx =
  let r = ctx.rand in
  ctx.n_people <- ctx.n_people + 1;
  let id = Printf.sprintf "p%d" ctx.n_people in
  let children =
    [ leaf ctx "name" (Vocab.person_name r) ]
    @ opt ctx 0.7 (fun c -> leaf c "born" (Vocab.year r))
    @ opt ctx 0.15 (fun c -> leaf c "died" (Vocab.year r))
    @ opt ctx 0.4 (fun c -> leaf c "bio" (Vocab.sentence r))
    @ opt ctx 0.05 (fun c -> leaf c "awardnote" (Vocab.sentence r))
  in
  mk ctx ~attrs:[ ("id", id) ] "person" children

let studio ctx =
  let r = ctx.rand in
  ctx.n_studios <- ctx.n_studios + 1;
  let id = Printf.sprintf "s%d" ctx.n_studios in
  mk ctx ~attrs:[ ("id", id) ] "studio"
    ([ leaf ctx "name" (Vocab.title r) ] @ opt ctx 0.6 (fun c -> leaf c "city" (Vocab.place r)))

let review ctx =
  let r = ctx.rand in
  mk ctx "review"
    ([ leaf ctx "reviewer" (Vocab.person_name r); leaf ctx "plotsummary" (Vocab.sentence r) ]
    @ opt ctx 0.8 (fun c -> leaf c "rating" (string_of_int (Vocab.int_between r 1 10)))
    @ opt ctx 0.3 (fun c -> leaf c "remarks" (Vocab.sentence r))
    @ opt ctx 0.04 (fun c -> leaf c "goofs" (Vocab.sentence r))
    @ opt ctx 0.04 (fun c -> leaf c "trivia" (Vocab.sentence r))
    @ opt ctx 0.03 (fun c -> leaf c "quote" (Vocab.sentence r)))

let video ctx =
  let r = ctx.rand in
  let format =
    match Random.State.int r 10 with
    | 0 | 1 | 2 | 3 -> leaf ctx "vhs" "available"
    | 4 | 5 | 6 -> leaf ctx "dvd" "available"
    | 7 | 8 -> leaf ctx "laserdisc" "available"
    | _ -> leaf ctx "betamax" "collector"
  in
  mk ctx "video"
    ([ format ]
    @ opt ctx 0.3 (fun c -> leaf c "widescreen" "yes")
    @ opt ctx 0.5 (fun c -> leaf c "releasedate" (Vocab.year r)))

let cast ctx =
  let r = ctx.rand in
  let leads =
    List.init (Vocab.int_between r 1 2) (fun _ ->
        mk ctx "leadcast"
          [ leaf ctx "castname" (Vocab.person_name r); leaf ctx "role" (Vocab.title r) ])
  in
  let others =
    List.init (Vocab.int_between r 0 4) (fun _ ->
        mk ctx "othercast" [ leaf ctx "castname" (Vocab.person_name r) ])
  in
  mk ctx "cast" (leads @ others)

let songs ctx =
  let r = ctx.rand in
  mk ctx "soundtrack"
    (List.init (Vocab.int_between r 1 3) (fun _ ->
         mk ctx "song" [ leaf ctx "songtitle" (Vocab.title r); leaf ctx "composer" (Vocab.person_name r) ]))

let movie ctx =
  let r = ctx.rand in
  ctx.n_movies <- ctx.n_movies + 1;
  let id = Printf.sprintf "m%d" ctx.n_movies in
  let attrs = ref [ ("id", id) ] in
  if Vocab.chance r 0.03 && ctx.n_people > 0 then
    attrs := ("director", Printf.sprintf "p%d" (1 + Random.State.int r ctx.n_people)) :: !attrs;
  if Vocab.chance r 0.02 && ctx.n_people > 1 then
    attrs :=
      ("cast",
       Printf.sprintf "p%d p%d" (1 + Random.State.int r ctx.n_people)
         (1 + Random.State.int r ctx.n_people))
      :: !attrs;
  if Vocab.chance r 0.015 && ctx.n_studios > 0 then
    attrs := ("studio", Printf.sprintf "s%d" (1 + Random.State.int r ctx.n_studios)) :: !attrs;
  let rating =
    if Vocab.chance r 0.7 then leaf ctx "mpaarating" (Vocab.pick r [| "G"; "PG"; "PG-13"; "R" |])
    else leaf ctx "unrated" "true"
  in
  let children =
    [ leaf ctx "title" (Vocab.title r) ]
    @ opt ctx 0.15 (fun c -> leaf c "alttitle" (Vocab.title r))
    @ [ leaf ctx "year" (Vocab.year r);
        leaf ctx "genre" (Vocab.pick r [| "horror"; "scifi"; "noir"; "western"; "comedy" |])
      ]
    @ opt ctx 0.3 (fun c -> leaf c "subgenre" (Vocab.pick r [| "slasher"; "space"; "heist" |]))
    @ [ rating; leaf ctx "runtime" (string_of_int (Vocab.int_between r 60 140)) ]
    @ opt ctx 0.6 (fun c -> leaf c "country" "US")
    @ opt ctx 0.4 (fun c -> leaf c "language" "English")
    @ opt ctx 0.3 (fun c -> leaf c "colortype" (Vocab.pick r [| "color"; "bw" |]))
    @ [ cast ctx; review ctx ]
    @ opt ctx 0.7 (fun c -> video c)
    @ opt ctx 0.4 (fun c -> leaf c "distributor" (Vocab.title r))
    @ opt ctx 0.05 (fun c -> leaf c "boxoffice" (string_of_int (Vocab.int_between r 10000 999999)))
    @ opt ctx 0.04 (fun c ->
          mk c "awards" [ mk c "award" [ leaf c "category" (Vocab.title r) ] ])
    @ opt ctx 0.03 (fun c -> leaf c "sequel" (Vocab.title r))
    @ opt ctx 0.03 (fun c -> songs c)
    @ opt ctx 0.02 (fun c ->
          mk c "pointofcontact"
            ([ leaf c "email" "info@example.com" ]
            @ opt c 0.5 (fun c -> leaf c "url" "http://example.com")
            @ opt c 0.3 (fun c -> leaf c "phone" "555-0100")))
    @ List.concat_map
        (fun (p, tag) -> opt ctx p (fun c -> leaf c tag (Vocab.sentence r)))
        (* ultra-rare review fields: present only in the larger corpora,
           growing the label count from ~62 to ~70 (Table 1) *)
        [ (0.005, "cultstatus"); (0.004, "madefortv"); (0.004, "drivein");
          (0.003, "restoration"); (0.003, "novelization"); (0.0025, "remakeof");
          (0.002, "banned"); (0.002, "colorized"); (0.0015, "serialpart");
          (0.0015, "doublefeature"); (0.001, "fxhouse"); (0.001, "stuntcoord");
          (0.0008, "makeupartist")
        ]
  in
  mk ctx ~attrs:!attrs "movie" children

let generate ~seed ~target_nodes =
  let ctx =
    { rand = Random.State.make [| seed; 0xF11C |]; nodes = 1; n_people = 0; n_studios = 0; n_movies = 0 }
  in
  let items = Repro_util.Vec.create () in
  (* a starting pool of reference targets, then movies interleaved with the
     occasional new person/studio *)
  for _ = 1 to 6 do
    Repro_util.Vec.push items (person ctx)
  done;
  for _ = 1 to 2 do
    Repro_util.Vec.push items (studio ctx)
  done;
  while ctx.nodes < target_nodes do
    Repro_util.Vec.push items (movie ctx);
    if Vocab.chance ctx.rand 0.15 then Repro_util.Vec.push items (person ctx);
    if Vocab.chance ctx.rand 0.03 then Repro_util.Vec.push items (studio ctx)
  done;
  { T.decl = [ ("version", "1.0") ];
    root = el ~children:(Array.to_list (Repro_util.Vec.to_array items)) "flixinfo"
  }

(* The DTD the generator's output conforms to (validated in tests). *)
let dtd =
  {|<!ELEMENT flixinfo ((person|studio|movie)+)>
<!ELEMENT person (name, born?, died?, bio?, awardnote?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT studio (name, city?)>
<!ATTLIST studio id ID #REQUIRED>
<!ELEMENT movie (title, alttitle?, year, genre, subgenre?, (mpaarating|unrated), runtime, country?, language?, colortype?, cast, review, video?, distributor?, boxoffice?, awards?, sequel?, soundtrack?, pointofcontact?, cultstatus?, madefortv?, drivein?, restoration?, novelization?, remakeof?, banned?, colorized?, serialpart?, doublefeature?, fxhouse?, stuntcoord?, makeupartist?)>
<!ATTLIST movie
  id ID #REQUIRED
  director IDREF #IMPLIED
  cast IDREFS #IMPLIED
  studio IDREF #IMPLIED>
<!ELEMENT cast (leadcast+, othercast*)>
<!ELEMENT leadcast (castname, role)>
<!ELEMENT othercast (castname)>
<!ELEMENT review (reviewer, plotsummary, rating?, remarks?, goofs?, trivia?, quote?)>
<!ELEMENT video ((vhs|dvd|laserdisc|betamax), widescreen?, releasedate?)>
<!ELEMENT awards (award)>
<!ELEMENT award (category)>
<!ELEMENT soundtrack (song+)>
<!ELEMENT song (songtitle, composer)>
<!ELEMENT pointofcontact (email, url?, phone?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT born (#PCDATA)>
<!ELEMENT died (#PCDATA)>
<!ELEMENT bio (#PCDATA)>
<!ELEMENT awardnote (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT alttitle (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT genre (#PCDATA)>
<!ELEMENT subgenre (#PCDATA)>
<!ELEMENT mpaarating (#PCDATA)>
<!ELEMENT unrated (#PCDATA)>
<!ELEMENT runtime (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT language (#PCDATA)>
<!ELEMENT colortype (#PCDATA)>
<!ELEMENT castname (#PCDATA)>
<!ELEMENT role (#PCDATA)>
<!ELEMENT reviewer (#PCDATA)>
<!ELEMENT plotsummary (#PCDATA)>
<!ELEMENT rating (#PCDATA)>
<!ELEMENT remarks (#PCDATA)>
<!ELEMENT goofs (#PCDATA)>
<!ELEMENT trivia (#PCDATA)>
<!ELEMENT quote (#PCDATA)>
<!ELEMENT vhs (#PCDATA)>
<!ELEMENT dvd (#PCDATA)>
<!ELEMENT laserdisc (#PCDATA)>
<!ELEMENT betamax (#PCDATA)>
<!ELEMENT widescreen (#PCDATA)>
<!ELEMENT releasedate (#PCDATA)>
<!ELEMENT distributor (#PCDATA)>
<!ELEMENT boxoffice (#PCDATA)>
<!ELEMENT category (#PCDATA)>
<!ELEMENT sequel (#PCDATA)>
<!ELEMENT songtitle (#PCDATA)>
<!ELEMENT composer (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT url (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT cultstatus (#PCDATA)>
<!ELEMENT madefortv (#PCDATA)>
<!ELEMENT drivein (#PCDATA)>
<!ELEMENT restoration (#PCDATA)>
<!ELEMENT novelization (#PCDATA)>
<!ELEMENT remakeof (#PCDATA)>
<!ELEMENT banned (#PCDATA)>
<!ELEMENT colorized (#PCDATA)>
<!ELEMENT serialpart (#PCDATA)>
<!ELEMENT doublefeature (#PCDATA)>
<!ELEMENT fxhouse (#PCDATA)>
<!ELEMENT stuntcoord (#PCDATA)>
<!ELEMENT makeupartist (#PCDATA)>
|}

let idref_attrs = [ "director"; "cast"; "studio" ]

let to_graph doc = Repro_graph.Data_graph.of_document ~idref_attrs doc

let dataset ~seed ~target_nodes = to_graph (generate ~seed ~target_nodes)
