module T = Repro_xml.Xml_tree

let el = T.element
let txt s = T.Text s

(* Every generated element counts toward the budget: in the Section 3
   encoding each element (leaf or not) becomes exactly one graph node. *)
type ctx = {
  rand : Random.State.t;
  mutable nodes : int;
}

let mk ctx ?attrs tag children =
  ctx.nodes <- ctx.nodes + 1;
  T.Element (el ?attrs ~children tag)

let leaf ctx tag s = mk ctx tag [ txt s ]

let speech ctx =
  let r = ctx.rand in
  let speakers = List.init (if Vocab.chance r 0.06 then 2 else 1) (fun _ -> leaf ctx "SPEAKER" (Vocab.family_name r)) in
  let lines = List.init (Vocab.int_between r 2 7) (fun _ -> leaf ctx "LINE" (Vocab.line r)) in
  let stagedir = if Vocab.chance r 0.08 then [ leaf ctx "STAGEDIR" (Vocab.sentence r) ] else [] in
  mk ctx "SPEECH" (speakers @ lines @ stagedir)

(* [scale] shrinks the bulk counts so a play can be sized to the remaining
   node budget; 1.0 reproduces the paper's ~5000-node plays. *)
let scaled_count r scale lo hi floor =
  max floor (int_of_float (float_of_int (Vocab.int_between r lo hi) *. scale))

let scene ctx ~scale =
  let r = ctx.rand in
  let title = leaf ctx "TITLE" (Vocab.title r) in
  let subhead = if Vocab.chance r 0.003 then [ leaf ctx "SUBHEAD" (Vocab.title r) ] else [] in
  let opening = if Vocab.chance r 0.7 then [ leaf ctx "STAGEDIR" (Vocab.sentence r) ] else [] in
  let speeches = List.init (scaled_count r scale 15 35 2) (fun _ -> speech ctx) in
  mk ctx "SCENE" ((title :: subhead) @ opening @ speeches)

let act ctx ~scale =
  let r = ctx.rand in
  let title = leaf ctx "TITLE" (Vocab.title r) in
  let prologue =
    if Vocab.chance r 0.015 then
      [ mk ctx "PROLOGUE" [ leaf ctx "TITLE" "Prologue"; speech ctx ] ]
    else []
  in
  let scenes = List.init (scaled_count r scale 3 7 1) (fun _ -> scene ctx ~scale) in
  let epilogue =
    if Vocab.chance r 0.01 then
      [ mk ctx "EPILOGUE" [ leaf ctx "TITLE" "Epilogue"; speech ctx ] ]
    else []
  in
  mk ctx "ACT" ((title :: prologue) @ scenes @ epilogue)

let personae ctx =
  let r = ctx.rand in
  let title = leaf ctx "TITLE" "Dramatis Personae" in
  let personas = List.init (Vocab.int_between r 10 24) (fun _ -> leaf ctx "PERSONA" (Vocab.person_name r)) in
  let pgroup =
    if Vocab.chance r 0.6 then
      [ mk ctx "PGROUP"
          (List.init (Vocab.int_between r 2 4) (fun _ -> leaf ctx "PERSONA" (Vocab.person_name r))
          @ [ leaf ctx "GRPDESCR" (Vocab.sentence r) ])
      ]
    else []
  in
  mk ctx "PERSONAE" ((title :: personas) @ pgroup)

let play ctx ~scale =
  let r = ctx.rand in
  let title = leaf ctx "TITLE" ("The Tragedy of " ^ Vocab.title r) in
  let subtitle = if Vocab.chance r 0.02 then [ leaf ctx "SUBTITLE" (Vocab.title r) ] else [] in
  let fm = mk ctx "FM" (List.init 3 (fun _ -> leaf ctx "P" (Vocab.sentence r))) in
  let induct =
    if Vocab.chance r 0.03 then
      [ mk ctx "INDUCT" [ leaf ctx "TITLE" "Induction"; scene ctx ~scale ] ]
    else []
  in
  let acts = List.init 5 (fun _ -> act ctx ~scale) in
  mk ctx "PLAY"
    ((title :: subtitle)
    @ [ fm; personae ctx; leaf ctx "SCNDESCR" (Vocab.sentence r); leaf ctx "PLAYSUBT" (Vocab.title r) ]
    @ induct @ acts)

let generate ~seed ~target_nodes =
  let ctx = { rand = Random.State.make [| seed; 0x51AB |]; nodes = 1 } in
  let plays = Repro_util.Vec.create () in
  while ctx.nodes < target_nodes do
    let remaining = target_nodes - ctx.nodes in
    let scale = Float.min 1.0 (Float.max 0.05 (float_of_int remaining /. 5000.)) in
    Repro_util.Vec.push plays (play ctx ~scale)
  done;
  { T.decl = [ ("version", "1.0") ];
    root = el ~children:(Array.to_list (Repro_util.Vec.to_array plays)) "PLAYS"
  }

(* The DTD the generator's output conforms to; Dataset tests validate
   every generated document against it, mirroring the paper's setup of
   generating data from a DTD. *)
let dtd =
  {|<!ELEMENT PLAYS (PLAY+)>
<!ELEMENT PLAY (TITLE, SUBTITLE?, FM, PERSONAE, SCNDESCR, PLAYSUBT, INDUCT?, ACT+)>
<!ELEMENT FM (P+)>
<!ELEMENT PERSONAE (TITLE, PERSONA+, PGROUP?)>
<!ELEMENT PGROUP (PERSONA+, GRPDESCR)>
<!ELEMENT INDUCT (TITLE, SCENE)>
<!ELEMENT ACT (TITLE, PROLOGUE?, SCENE+, EPILOGUE?)>
<!ELEMENT PROLOGUE (TITLE, SPEECH)>
<!ELEMENT EPILOGUE (TITLE, SPEECH)>
<!ELEMENT SCENE (TITLE, SUBHEAD?, STAGEDIR?, SPEECH+)>
<!ELEMENT SPEECH (SPEAKER+, LINE+, STAGEDIR?)>
<!ELEMENT TITLE (#PCDATA)>
<!ELEMENT SUBTITLE (#PCDATA)>
<!ELEMENT P (#PCDATA)>
<!ELEMENT PERSONA (#PCDATA)>
<!ELEMENT GRPDESCR (#PCDATA)>
<!ELEMENT SCNDESCR (#PCDATA)>
<!ELEMENT PLAYSUBT (#PCDATA)>
<!ELEMENT SPEAKER (#PCDATA)>
<!ELEMENT LINE (#PCDATA)>
<!ELEMENT STAGEDIR (#PCDATA)>
<!ELEMENT SUBHEAD (#PCDATA)>
|}

let to_graph doc = Repro_graph.Data_graph.of_document doc

let dataset ~seed ~target_nodes = to_graph (generate ~seed ~target_nodes)
