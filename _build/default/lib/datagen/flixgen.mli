(** Generator for the FlixML dataset family (B-movie reviews).

    Graph-structured XML with moderate irregularity: many optional
    elements, alternative content (video formats, rating styles), and a
    sprinkle of ID/IDREF cross references — 3 IDREF-typed labels
    ([@director], [@cast], [@studio]) with few instances, matching the small
    edges-minus-nodes gap of Table 1. Rare labels appear with low
    probability per movie so the label count grows from ~62 to ~70 with
    corpus size. *)

val dtd : string
(** Internal-subset DTD describing the generator's output; every generated
    document validates against it ({!Repro_xml.Dtd.validate}). *)

val generate : seed:int -> target_nodes:int -> Repro_xml.Xml_tree.document

val idref_attrs : string list
(** Attribute names to treat as IDREF when building the graph. *)

val to_graph : Repro_xml.Xml_tree.document -> Repro_graph.Data_graph.t

val dataset : seed:int -> target_nodes:int -> Repro_graph.Data_graph.t
