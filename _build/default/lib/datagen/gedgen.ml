module T = Repro_xml.Xml_tree

let el = T.element
let txt s = T.Text s

type ctx = {
  rand : Random.State.t;
  mutable nodes : int;
  n_indi : int;
  n_fam : int;
  n_sour : int;
  n_note : int;
  n_subm : int;
  n_repo : int;
  n_obje : int;
}

let mk ctx ?(attrs = []) tag children =
  let counted = List.length (List.filter (fun (k, _) -> k <> "id") attrs) in
  ctx.nodes <- ctx.nodes + 1 + counted;
  T.Element (el ~attrs ~children tag)

let leaf ctx tag s = mk ctx tag [ txt s ]

let opt ctx p f = if Vocab.chance ctx.rand p then [ f ctx ] else []

(* Reference structure: each block of 8 consecutive individuals and 3
   families forms a canonical mini-pedigree — family 0 marries offsets 0+1
   with children 4+5, family 1 marries 2+3 with children 6+7, family 2 is
   the second generation (4 marries 6, with 5 and 7 linked as children).
   The first generation's FAMC points at family 2 of the *previous* block,
   chaining pedigrees into arbitrarily deep reference paths. Whether an
   attribute is present stays random (irregularity), but its target is a
   pure function of the record id: canonical targets make the subsets
   arising in the strong DataGuide's construction coincide, so the index
   stays buildable (while still growing to a large fraction of the data,
   as in Table 2) — mirroring the clustered ids the IBM generator produced
   from the GedML DTD. *)
let indis_per_block = 8
let fams_per_block = 3

(* individual [i] (1-based): block and offset *)
let indi_block i = (i - 1) / indis_per_block
let indi_offset i = (i - 1) mod indis_per_block

let fam_id ctx b role =
  let j = (b * fams_per_block) + role + 1 in
  if j >= 1 && j <= ctx.n_fam then Some (Printf.sprintf "f%d" j) else None

let indi_id ctx b offset =
  let i = (b * indis_per_block) + offset + 1 in
  if i >= 1 && i <= ctx.n_indi then Some (Printf.sprintf "i%d" i) else None

(* the family individual [i] is a child of *)
let famc_of ctx i =
  let b = indi_block i in
  match indi_offset i with
  | 4 | 5 -> fam_id ctx b 0
  | 6 | 7 -> fam_id ctx b 1
  | _ -> fam_id ctx (b - 1) 2 (* first generation: parents in the previous block *)

(* the family individual [i] is a spouse in *)
let fams_of ctx i =
  let b = indi_block i in
  match indi_offset i with
  | 0 | 1 -> fam_id ctx b 0
  | 2 | 3 -> fam_id ctx b 1
  | 4 | 6 -> fam_id ctx b 2
  | _ -> None

let husb_of ctx j =
  let b = (j - 1) / fams_per_block in
  match (j - 1) mod fams_per_block with
  | 0 -> indi_id ctx b 0
  | 1 -> indi_id ctx b 2
  | _ -> indi_id ctx b 4

let wife_of ctx j =
  let b = (j - 1) / fams_per_block in
  match (j - 1) mod fams_per_block with
  | 0 -> indi_id ctx b 1
  | 1 -> indi_id ctx b 3
  | _ -> indi_id ctx b 6

let chil_of ctx j =
  let b = (j - 1) / fams_per_block in
  let offsets =
    match (j - 1) mod fams_per_block with
    | 0 -> [ 4; 5 ]
    | 1 -> [ 6; 7 ]
    | _ -> [ 5; 7 ]
  in
  match List.filter_map (indi_id ctx b) offsets with
  | [] -> None
  | ids -> Some (String.concat " " ids)

(* one canonical record of the given pool per block *)
let pooled ctx prefix pool_size i_block =
  let n_blocks = max 1 ((ctx.n_indi + indis_per_block - 1) / indis_per_block) in
  let j = 1 + (i_block * pool_size / n_blocks) in
  if j >= 1 && j <= pool_size then Some (Printf.sprintf "%s%d" prefix j) else None

(* buddy individual: the neighbour with the offset's lowest bit flipped *)
let buddy_of ctx i =
  indi_id ctx (indi_block i) (indi_offset i lxor 1)

(* inline source citation, as GEDCOM nests them under events; citations
   carry notes which may themselves cite sources, recursively — this deep
   optional nesting is what makes the set of distinct root label paths (and
   hence the path indexes over them) large on GedML *)
let rec citation ctx depth =
  let r = ctx.rand in
  mk ctx "SOUR"
    (opt ctx 0.5 (fun c -> leaf c "PAGE" (string_of_int (Vocab.int_between r 1 400)))
    @ opt ctx 0.4 (fun c -> leaf c "TEXT" (Vocab.sentence r))
    @ opt ctx 0.15 (fun c -> leaf c "QUAY" (string_of_int (Vocab.int_between r 0 3)))
    @ opt ctx 0.1 (fun c -> mk c "DATA" ([ leaf c "DATE" (Vocab.date r) ] @ opt c 0.4 (fun c -> leaf c "TEXT" (Vocab.sentence r))))
    @ opt ctx 0.3 (fun c -> note_struct c depth))

and note_struct ctx depth =
  let r = ctx.rand in
  if depth >= 3 then leaf ctx "NOTE" (Vocab.sentence r)
  else
    mk ctx "NOTE"
      ([ Repro_xml.Xml_tree.Text (Vocab.sentence r) ]
      |> fun base ->
      match
        opt ctx 0.35 (fun c -> citation c (depth + 1))
        @ opt ctx 0.15 (fun c -> leaf c "CONT" (Vocab.sentence r))
      with
      | [] -> base
      | children -> children)

let event ctx tag =
  let r = ctx.rand in
  mk ctx tag
    (opt ctx 0.9 (fun c -> leaf c "DATE" (Vocab.date r))
    @ opt ctx 0.7 (fun c -> leaf c "PLAC" (Vocab.place r))
    @ opt ctx 0.1 (fun c -> leaf c "AGE" (string_of_int (Vocab.int_between r 0 99)))
    @ opt ctx 0.25 (fun c -> citation c 0)
    @ opt ctx 0.15 (fun c -> note_struct c 0)
    @ opt ctx 0.02 (fun c -> mk c "OBJE" [ leaf c "FORM" "jpeg"; leaf c "FILE" "scan.img" ]))

let addr ctx =
  let r = ctx.rand in
  mk ctx "ADDR"
    ([ leaf ctx "CITY" (Vocab.place r) ]
    @ opt ctx 0.5 (fun c -> leaf c "STAE" (Vocab.pick r [| "CA"; "NY"; "TX"; "OH"; "VT" |]))
    @ opt ctx 0.4 (fun c -> leaf c "CTRY" "USA"))

let name_elem ctx =
  let r = ctx.rand in
  (* irregularity: half the NAMEs are flat text, half are structured *)
  if Vocab.chance r 0.5 then leaf ctx "NAME" (Vocab.person_name r)
  else
    mk ctx "NAME" [ leaf ctx "GIVN" (Vocab.given_name r); leaf ctx "SURN" (Vocab.family_name r) ]

let indi ctx i =
  let r = ctx.rand in
  let b = indi_block i in
  let add p name target attrs =
    match target with
    | Some id when Vocab.chance ctx.rand p -> (name, id) :: attrs
    | Some _ | None -> ignore r; attrs
  in
  let attrs =
    [ ("id", Printf.sprintf "i%d" i) ]
    |> add 0.30 "famc" (famc_of ctx i)
    |> add 0.20 "fams" (fams_of ctx i)
    |> add 0.3 "sour" (pooled ctx "s" ctx.n_sour b)
    |> add 0.25 "note" (pooled ctx "n" ctx.n_note b)
    |> add 0.05 "asso" (buddy_of ctx i)
    |> add 0.03 "alia" (buddy_of ctx i)
    |> add 0.03 "obje" (pooled ctx "o" ctx.n_obje b)
    |> add 0.02 "subm" (pooled ctx "u" ctx.n_subm b)
    |> add 0.015 "anci" (pooled ctx "u" ctx.n_subm b)
    |> add 0.015 "desi" (pooled ctx "u" ctx.n_subm b)
  in
  let children =
    [ name_elem ctx; leaf ctx "SEX" (Vocab.pick r [| "M"; "F" |]); event ctx "BIRT" ]
    @ opt ctx 0.35 (fun c ->
          let base = event c "DEAT" in
          match base with
          | T.Element e when Vocab.chance r 0.2 ->
            T.Element { e with T.children = e.T.children @ [ leaf c "CAUS" (Vocab.sentence r) ] }
          | other -> other)
    @ opt ctx 0.12 (fun c -> event c "BURI")
    @ opt ctx 0.15 (fun c -> event c "BAPM")
    @ opt ctx 0.05 (fun c -> event c "CHR")
    @ opt ctx 0.25 (fun c -> leaf c "OCCU" (Vocab.pick r [| "farmer"; "smith"; "teacher"; "miller"; "clerk" |]))
    @ opt ctx 0.15 (fun c -> mk c "RESI" [ addr c ])
    @ opt ctx 0.025 (fun c -> event c "EMIG")
    @ opt ctx 0.025 (fun c -> event c "IMMI")
    @ opt ctx 0.03 (fun c -> event c "CENS")
    @ opt ctx 0.012 (fun c -> event c "PROB")
    @ opt ctx 0.012 (fun c -> event c "WILL")
    @ opt ctx 0.012 (fun c -> event c "GRAD")
    @ opt ctx 0.012 (fun c -> event c "RETI")
    @ opt ctx 0.05 (fun c ->
          mk c "EVEN" ([ leaf c "TYPE" (Vocab.title r) ] @ opt c 0.8 (fun c -> leaf c "DATE" (Vocab.date r))))
    (* the long tail: event kinds so rare they only surface in large files,
       which is what grows the label count from ~65 to ~84 across
       Ged01→Ged03 (Table 1) *)
    @ List.concat_map
        (fun (p, tag) -> opt ctx p (fun c -> event c tag))
        [ (0.00140, "ADOP"); (0.00110, "CONF"); (0.00100, "NATU"); (0.00090, "EDUC");
          (0.00085, "RELI"); (0.00070, "CREM"); (0.00065, "FCOM"); (0.00055, "DSCR");
          (0.00050, "NCHI"); (0.00042, "ORDN"); (0.00040, "PROP"); (0.00034, "NMR");
          (0.00032, "BLES"); (0.00027, "IDNO"); (0.00026, "CASTE"); (0.00022, "CHRA");
          (0.00020, "SSN"); (0.00017, "BARM"); (0.00014, "BASM")
        ]
  in
  mk ctx ~attrs "INDI" children

let fam ctx i =
  let b = (i - 1) / fams_per_block in
  let add p name target attrs =
    match target with
    | Some id when Vocab.chance ctx.rand p -> (name, id) :: attrs
    | Some _ | None -> attrs
  in
  let attrs =
    [ ("id", Printf.sprintf "f%d" i) ]
    |> add 0.6 "husb" (husb_of ctx i)
    |> add 0.6 "wife" (wife_of ctx i)
    |> add 0.7 "chil" (chil_of ctx i)
    |> add 0.2 "sour" (pooled ctx "s" ctx.n_sour b)
    |> add 0.15 "note" (pooled ctx "n" ctx.n_note b)
  in
  let children =
    opt ctx 0.8 (fun c -> event c "MARR")
    @ opt ctx 0.08 (fun c -> event c "DIV")
    @ opt ctx 0.05 (fun c -> event c "ENGA")
  in
  mk ctx ~attrs "FAM" children

let sour ctx i =
  let r = ctx.rand in
  let attrs =
    [ ("id", Printf.sprintf "s%d" i) ]
    |> (fun attrs ->
         match pooled ctx "r" ctx.n_repo ((i - 1) * indis_per_block) with
         | Some id when Vocab.chance ctx.rand 0.3 -> ("repo", id) :: attrs
         | Some _ | None -> ignore r; attrs)
  in
  mk ctx ~attrs "SOUR"
    ([ leaf ctx "TITL" (Vocab.title r) ]
    @ opt ctx 0.5 (fun c -> leaf c "AUTH" (Vocab.person_name r))
    @ opt ctx 0.4 (fun c -> leaf c "PUBL" (Vocab.place r))
    @ opt ctx 0.3 (fun c -> leaf c "TEXT" (Vocab.sentence r))
    @ opt ctx 0.2 (fun c -> leaf c "PAGE" (string_of_int (Vocab.int_between r 1 400))))

let note ctx i =
  mk ctx ~attrs:[ ("id", Printf.sprintf "n%d" i) ] "NOTE" [ txt (Vocab.sentence ctx.rand) ]

let subm ctx i =
  mk ctx ~attrs:[ ("id", Printf.sprintf "u%d" i) ] "SUBM"
    ([ leaf ctx "NAME" (Vocab.person_name ctx.rand) ] @ opt ctx 0.5 (fun c -> addr c))

let repo ctx i =
  mk ctx ~attrs:[ ("id", Printf.sprintf "r%d" i) ] "REPO"
    ([ leaf ctx "NAME" (Vocab.title ctx.rand) ] @ opt ctx 0.4 (fun c -> addr c))

let obje ctx i =
  mk ctx ~attrs:[ ("id", Printf.sprintf "o%d" i) ] "OBJE"
    [ leaf ctx "FORM" (Vocab.pick ctx.rand [| "jpeg"; "tiff" |]); leaf ctx "FILE" "scan.img" ]

let head ctx =
  mk ctx "HEAD"
    [ leaf ctx "DEST" "ANSTFILE";
      mk ctx "GEDC" [ leaf ctx "VERS" "5.5"; leaf ctx "FORM" "GedML" ];
      leaf ctx "CHAR" "UTF-8"
    ]

let generate ~seed ~target_nodes =
  (* ~19 nodes per individual including its share of families, sources and
     notes; sized up-front so every cross reference has a valid target *)
  let n_indi = max 4 (target_nodes / 18) in
  let ctx =
    { rand = Random.State.make [| seed; 0x6ED0 |];
      nodes = 1;
      n_indi;
      n_fam = max fams_per_block ((n_indi + indis_per_block - 1) / indis_per_block * fams_per_block);
      n_sour = max 1 (n_indi / 10);
      n_note = max 1 (n_indi / 8);
      n_subm = max 1 (n_indi / 50);
      n_repo = max 1 (n_indi / 60);
      n_obje = max 1 (n_indi / 40)
    }
  in
  let items = Repro_util.Vec.create () in
  Repro_util.Vec.push items (head ctx);
  for i = 1 to ctx.n_subm do
    Repro_util.Vec.push items (subm ctx i)
  done;
  for i = 1 to ctx.n_repo do
    Repro_util.Vec.push items (repo ctx i)
  done;
  for i = 1 to ctx.n_obje do
    Repro_util.Vec.push items (obje ctx i)
  done;
  for i = 1 to ctx.n_sour do
    Repro_util.Vec.push items (sour ctx i)
  done;
  for i = 1 to ctx.n_note do
    Repro_util.Vec.push items (note ctx i)
  done;
  for i = 1 to ctx.n_indi do
    Repro_util.Vec.push items (indi ctx i);
    if i * ctx.n_fam / ctx.n_indi > (i - 1) * ctx.n_fam / ctx.n_indi then
      Repro_util.Vec.push items (fam ctx (i * ctx.n_fam / ctx.n_indi))
  done;
  (* top up with additional individuals if the random draw left the file
     short of its node target (their ids exceed every reference range, so
     they are simply unreferenced records); settle the remainder with
     standalone notes *)
  let extra_indi = ref ctx.n_indi in
  while ctx.nodes < target_nodes - 20 do
    incr extra_indi;
    Repro_util.Vec.push items (indi ctx !extra_indi)
  done;
  let extra_note = ref ctx.n_note in
  while ctx.nodes < target_nodes - 1 do
    incr extra_note;
    Repro_util.Vec.push items (note ctx !extra_note)
  done;
  Repro_util.Vec.push items (mk ctx "TRLR" []);
  { T.decl = [ ("version", "1.0") ];
    root = el ~children:(Array.to_list (Repro_util.Vec.to_array items)) "GED"
  }

(* The DTD the generator's output conforms to (validated in tests). SOUR
   and NOTE have union content models because the same tags serve both as
   top-level records and as inline citations/notes - the nesting that makes
   GedML's set of distinct label paths large. *)
let dtd =
  {|<!ELEMENT GED (HEAD, SUBM+, REPO+, OBJE+, SOUR+, NOTE+, (INDI|FAM)+, NOTE*, TRLR)>
<!ELEMENT HEAD (DEST, GEDC, CHAR)>
<!ELEMENT GEDC (VERS, FORM)>
<!ELEMENT SUBM (NAME, ADDR?)>
<!ATTLIST SUBM id ID #REQUIRED>
<!ELEMENT REPO (NAME, ADDR?)>
<!ATTLIST REPO id ID #REQUIRED>
<!ELEMENT OBJE (FORM, FILE)>
<!ATTLIST OBJE id ID #IMPLIED>
<!ELEMENT ADDR (CITY, STAE?, CTRY?)>
<!ELEMENT SOUR ((TITL, AUTH?, PUBL?, TEXT?, PAGE?) | (PAGE?, TEXT?, QUAY?, DATA?, NOTE?))>
<!ATTLIST SOUR id ID #IMPLIED repo IDREF #IMPLIED>
<!ELEMENT DATA (DATE, TEXT?)>
<!ELEMENT NOTE (#PCDATA|SOUR|CONT)*>
<!ATTLIST NOTE id ID #IMPLIED>
<!ELEMENT NAME (#PCDATA|GIVN|SURN)*>
<!ELEMENT INDI (NAME, SEX, BIRT, DEAT?, BURI?, BAPM?, CHR?, OCCU?, RESI?, EMIG?, IMMI?, CENS?, PROB?, WILL?, GRAD?, RETI?, EVEN?, ADOP?, CONF?, NATU?, EDUC?, RELI?, CREM?, FCOM?, DSCR?, NCHI?, ORDN?, PROP?, NMR?, BLES?, IDNO?, CASTE?, CHRA?, SSN?, BARM?, BASM?)>
<!ATTLIST INDI
  id ID #REQUIRED
  famc IDREF #IMPLIED
  fams IDREF #IMPLIED
  sour IDREF #IMPLIED
  note IDREF #IMPLIED
  asso IDREF #IMPLIED
  alia IDREF #IMPLIED
  obje IDREF #IMPLIED
  subm IDREF #IMPLIED
  anci IDREF #IMPLIED
  desi IDREF #IMPLIED>
<!ELEMENT FAM (MARR?, DIV?, ENGA?)>
<!ATTLIST FAM
  id ID #REQUIRED
  husb IDREF #IMPLIED
  wife IDREF #IMPLIED
  chil IDREFS #IMPLIED
  sour IDREF #IMPLIED
  note IDREF #IMPLIED>
<!ELEMENT DEAT (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?, CAUS?)>
<!ELEMENT EVEN (TYPE, DATE?)>
<!ELEMENT RESI (ADDR)>
<!ELEMENT TRLR EMPTY>
<!ELEMENT BIRT (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT BURI (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT BAPM (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT CHR (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT EMIG (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT IMMI (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT CENS (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT PROB (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT WILL (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT GRAD (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT RETI (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT MARR (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT DIV (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT ENGA (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT ADOP (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT CONF (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT NATU (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT EDUC (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT RELI (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT CREM (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT FCOM (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT DSCR (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT NCHI (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT ORDN (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT PROP (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT NMR (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT BLES (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT IDNO (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT CASTE (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT CHRA (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT SSN (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT BARM (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT BASM (DATE?, PLAC?, AGE?, SOUR?, NOTE?, OBJE?)>
<!ELEMENT DEST (#PCDATA)>
<!ELEMENT CHAR (#PCDATA)>
<!ELEMENT VERS (#PCDATA)>
<!ELEMENT FORM (#PCDATA)>
<!ELEMENT FILE (#PCDATA)>
<!ELEMENT CITY (#PCDATA)>
<!ELEMENT STAE (#PCDATA)>
<!ELEMENT CTRY (#PCDATA)>
<!ELEMENT TITL (#PCDATA)>
<!ELEMENT AUTH (#PCDATA)>
<!ELEMENT PUBL (#PCDATA)>
<!ELEMENT TEXT (#PCDATA)>
<!ELEMENT PAGE (#PCDATA)>
<!ELEMENT QUAY (#PCDATA)>
<!ELEMENT DATE (#PCDATA)>
<!ELEMENT PLAC (#PCDATA)>
<!ELEMENT AGE (#PCDATA)>
<!ELEMENT CAUS (#PCDATA)>
<!ELEMENT OCCU (#PCDATA)>
<!ELEMENT SEX (#PCDATA)>
<!ELEMENT GIVN (#PCDATA)>
<!ELEMENT SURN (#PCDATA)>
<!ELEMENT TYPE (#PCDATA)>
<!ELEMENT CONT (#PCDATA)>
|}

let idref_attrs =
  [ "famc"; "fams"; "husb"; "wife"; "chil"; "sour"; "note"; "subm"; "asso"; "alia"; "anci";
    "desi"; "repo"; "obje"
  ]

let to_graph doc = Repro_graph.Data_graph.of_document ~idref_attrs doc

let dataset ~seed ~target_nodes = to_graph (generate ~seed ~target_nodes)
