lib/datagen/flixgen.mli: Repro_graph Repro_xml
