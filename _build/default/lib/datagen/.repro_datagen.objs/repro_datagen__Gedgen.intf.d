lib/datagen/gedgen.mli: Repro_graph Repro_xml
