lib/datagen/dataset.mli: Repro_graph Repro_xml
