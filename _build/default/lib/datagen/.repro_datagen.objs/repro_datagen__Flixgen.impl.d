lib/datagen/flixgen.ml: Array List Printf Random Repro_graph Repro_util Repro_xml Vocab
