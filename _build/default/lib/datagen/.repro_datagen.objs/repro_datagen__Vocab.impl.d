lib/datagen/vocab.ml: Array List Printf Random String
