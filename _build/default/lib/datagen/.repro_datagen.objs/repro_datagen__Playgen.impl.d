lib/datagen/playgen.ml: Array Float List Random Repro_graph Repro_util Repro_xml Vocab
