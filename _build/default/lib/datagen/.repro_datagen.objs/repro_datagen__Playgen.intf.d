lib/datagen/playgen.mli: Repro_graph Repro_xml
