lib/datagen/dataset.ml: Flixgen Gedgen List Playgen String
