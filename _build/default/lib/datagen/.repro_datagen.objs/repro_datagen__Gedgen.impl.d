lib/datagen/gedgen.ml: Array List Printf Random Repro_graph Repro_util Repro_xml String Vocab
