lib/datagen/vocab.mli: Random
