(** Deterministic pseudo-text for the synthetic datasets. *)

val pick : Random.State.t -> 'a array -> 'a
(** Uniform choice. @raise Invalid_argument on an empty array. *)

val person_name : Random.State.t -> string
(** "Given Family". *)

val given_name : Random.State.t -> string
val family_name : Random.State.t -> string

val title : Random.State.t -> string
(** Two to four capitalized words. *)

val sentence : Random.State.t -> string
(** Six to sixteen lowercase words with a period. *)

val line : Random.State.t -> string
(** A shortish verse-like line (for play LINEs). *)

val year : Random.State.t -> string
(** Between 1900 and 2001. *)

val date : Random.State.t -> string
(** "12 MAR 1923" GEDCOM-style. *)

val place : Random.State.t -> string

val chance : Random.State.t -> float -> bool
(** [chance rand p] is true with probability [p]. *)

val int_between : Random.State.t -> int -> int -> int
(** Inclusive bounds. *)
