(** Generator for the Shakespeare-play dataset family.

    Tree-structured XML with the label vocabulary and shape of the
    Shakespeare collection used in the paper (PLAY/ACT/SCENE/SPEECH/...):
    minor structural irregularity, no attributes, roughly 5000 graph nodes
    per play. Rare labels (PROLOGUE, EPILOGUE, INDUCT, SUBHEAD, SUBTITLE)
    appear with low probability per play, so label counts grow with corpus
    size as in Table 1 (17 → 22). *)

val dtd : string
(** Internal-subset DTD describing the generator's output; every generated
    document validates against it ({!Repro_xml.Dtd.validate}). *)

val generate : seed:int -> target_nodes:int -> Repro_xml.Xml_tree.document
(** Deterministic in [seed]; generates whole plays until the element count
    reaches [target_nodes]. *)

val to_graph : Repro_xml.Xml_tree.document -> Repro_graph.Data_graph.t
(** Section 3 encoding (no ID/IDREF attributes in this family). *)

val dataset : seed:int -> target_nodes:int -> Repro_graph.Data_graph.t
