(** Generator for the GedML dataset family (genealogy).

    Highly irregular, graph-structured XML: individuals and families
    cross-reference each other densely (FAMC/FAMS/HUSB/WIFE/CHIL plus
    source/note/submitter/media citations), giving 14 IDREF-typed labels and
    an edge count well above the node count, as in Table 1. Rare event
    elements (EMIG, PROB, WILL, ...) appear with low probability so the
    label count grows from ~65 to ~84 with corpus size. *)

val dtd : string
(** Internal-subset DTD describing the generator's output; every generated
    document validates against it ({!Repro_xml.Dtd.validate}). *)

val generate : seed:int -> target_nodes:int -> Repro_xml.Xml_tree.document

val idref_attrs : string list

val to_graph : Repro_xml.Xml_tree.document -> Repro_graph.Data_graph.t

val dataset : seed:int -> target_nodes:int -> Repro_graph.Data_graph.t
