(** Registry of the nine datasets of Table 1.

    Each spec pins a generator family, a seed and a node-count target, so
    every component (tests, examples, benchmarks) works with the same
    deterministic data. Targets are the paper's node counts; generated
    counts land within a few percent. *)

type family = Play | Flix | Ged

type spec = {
  name : string;  (** e.g. ["four_tragedy"] — paper's file name sans [.xml] *)
  family : family;
  seed : int;
  target_nodes : int;
}

val all : spec list
(** The nine datasets, in Table 1 order: [four_tragedy], [shakes_11],
    [shakes_all], [Flix01..03], [Ged01..03]. *)

val small : spec list
(** The smallest dataset of each family — what the default test/bench
    configuration uses to keep runtimes reasonable. *)

val by_name : string -> spec option

val idref_attrs : family -> string list

val dtd_text : family -> string
(** The family's DTD (internal-subset syntax); every generated document
    validates against it, and its ID/IDREF declarations reproduce
    {!idref_attrs}. *)

val generate_document : spec -> Repro_xml.Xml_tree.document

val build_graph : spec -> Repro_graph.Data_graph.t
(** Generate and encode. Deterministic in the spec. *)

val scaled : spec -> float -> spec
(** [scaled spec f] shrinks/grows the node target by factor [f] (keeping
    name, family, seed) — used to run the full experiment grid at reduced
    scale. *)
