(** Materialize query results back into XML.

    Reconstructs the document subtree rooted at a node of a graph that was
    encoded by {!Data_graph.of_document}: ['@']-edges to value leaves become
    attributes, ['@']-edges to reference nodes become IDREF attributes
    (values recovered from the graph's id map, or rendered as [#nid] for
    targets without a recorded id), plain edges become child elements, and
    node values become character data. Reference targets themselves are not
    inlined — exactly inverse to the Section 3 encoding. *)

val element :
  ?tag:string -> Data_graph.t -> Data_graph.nid -> Repro_xml.Xml_tree.element
(** The subtree rooted at the node. [tag] overrides the element name — it
    is required knowledge for the document root, whose tag the graph
    encoding does not retain (defaults to the node's incoming tree-edge
    label, or ["root"]). @raise Invalid_argument on an unknown nid. *)

val to_xml_string : ?tag:string -> Data_graph.t -> Data_graph.nid -> string
(** {!element} serialized. *)
