(** Dataset characteristics as reported in Table 1 of the paper. *)

type t = {
  nodes : int;
  edges : int;
  labels : int;  (** distinct labels *)
  idref_labels : int;  (** IDREF-typed labels, the parenthesised count *)
}

val compute : Data_graph.t -> t

val pp : Format.formatter -> t -> unit
(** Renders as [nodes edges labels(idref)], matching the paper's row
    format. *)
