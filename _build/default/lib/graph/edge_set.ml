type t = int array

let bits = 31
let mask = (1 lsl bits) - 1
let null = mask

let pack u v =
  if u < 0 || u > mask || v < 0 || v > mask then
    invalid_arg (Printf.sprintf "Edge_set.pack: component out of range (%d, %d)" u v)
  else (u lsl bits) lor v

let unpack e = (e lsr bits, e land mask)

let empty = [||]

let of_packed_array a =
  if Repro_util.Int_sorted.is_sorted_set a then a else Repro_util.Int_sorted.of_unsorted a

let of_list l = of_packed_array (Array.of_list (List.map (fun (u, v) -> pack u v) l))

let to_list t = Array.to_list (Array.map unpack t)
let cardinal = Array.length
let is_empty t = Array.length t = 0
let mem t u v = Repro_util.Int_sorted.mem t (pack u v)
let union = Repro_util.Int_sorted.union
let union_many = Repro_util.Int_sorted.union_many
let inter = Repro_util.Int_sorted.inter
let diff = Repro_util.Int_sorted.diff
let subset = Repro_util.Int_sorted.subset
let equal = Repro_util.Int_sorted.equal

let iter f t =
  Array.iter
    (fun e ->
      let u, v = unpack e in
      f u v)
    t

let fold f acc t =
  let acc = ref acc in
  iter (fun u v -> acc := f !acc u v) t;
  !acc

let endpoints t =
  Repro_util.Int_sorted.of_unsorted (Array.map (fun e -> e land mask) t)

let parents t =
  let ps = Array.map (fun e -> e lsr bits) t in
  Repro_util.Int_sorted.of_unsorted (Array.of_seq (Seq.filter (fun u -> u <> null) (Array.to_seq ps)))

let semijoin_parents t sorted_parents =
  Array.of_seq
    (Seq.filter (fun e -> Repro_util.Int_sorted.mem sorted_parents (e lsr bits)) (Array.to_seq t))

let join a b = semijoin_parents b (endpoints a)

let pp ppf t =
  Format.fprintf ppf "{@[<hov>";
  iter
    (fun u v ->
      if u = null then Format.fprintf ppf "<NULL,%d>@ " v else Format.fprintf ppf "<%d,%d>@ " u v)
    t;
  Format.fprintf ppf "@]}"
