type t = {
  nodes : int;
  edges : int;
  labels : int;
  idref_labels : int;
}

let compute g =
  { nodes = Data_graph.n_nodes g;
    edges = Data_graph.n_edges g;
    labels = Label.count (Data_graph.labels g);
    idref_labels = List.length (Data_graph.idref_labels g)
  }

let pp ppf t = Format.fprintf ppf "%d %d %d(%d)" t.nodes t.edges t.labels t.idref_labels
