lib/graph/graph_stats.mli: Data_graph Format
