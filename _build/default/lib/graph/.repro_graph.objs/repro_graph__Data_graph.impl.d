lib/graph/data_graph.ml: Array Edge_set Format Hashtbl Label List Printf Repro_util Repro_xml String
