lib/graph/edge_set.ml: Array Format List Printf Repro_util Seq
