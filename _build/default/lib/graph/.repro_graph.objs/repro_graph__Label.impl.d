lib/graph/label.ml: Char Format Hashtbl Printf Repro_util String
