lib/graph/graph_stats.ml: Data_graph Format Label List
