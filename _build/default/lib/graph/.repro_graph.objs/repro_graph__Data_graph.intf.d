lib/graph/data_graph.mli: Edge_set Format Label Repro_xml
