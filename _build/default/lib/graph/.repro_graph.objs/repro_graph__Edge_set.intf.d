lib/graph/edge_set.mli: Format
