lib/graph/subtree.ml: Data_graph Label List Option Printf Repro_xml String
