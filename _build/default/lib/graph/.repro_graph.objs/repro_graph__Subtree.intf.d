lib/graph/subtree.mli: Data_graph Repro_xml
