(** LRU buffer pool over a {!Pager}.

    Reads go through the cache: a hit costs no disk access, a miss costs one
    disk read and may evict the least recently used page. Writes are
    write-through. All traffic is visible in {!Pager.stats} plus the pool's
    hit/miss counters. *)

type t

val create : Pager.t -> capacity:int -> t
(** [capacity] is the number of pages held in memory; must be positive. *)

val capacity : t -> int
val pager : t -> Pager.t

val get : t -> Pager.pid -> bytes
(** The page contents. The returned buffer is the cached page itself —
    callers must treat it as read-only. *)

val write : t -> Pager.pid -> bytes -> unit
(** Write-through: updates both the cache and the disk. *)

val flush : t -> unit
(** Drop all cached pages (e.g. between benchmark runs for cold-cache
    measurements). Counters are not reset. *)

val cached_pages : t -> int
