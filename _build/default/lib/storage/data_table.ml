(* Page layout: [u16 record_count] then records [i64 nid][u16 len][bytes].
   Records never span pages. *)

type t = {
  pool : Buffer_pool.t;
  pages : Pager.pid array;
  first_nids : int array;  (* first nid stored on pages.(i) *)
  entries : int;
}

let header_size = 2
let record_overhead = 8 + 2

let build pool g =
  let pager = Buffer_pool.pager pool in
  let page_size = Pager.page_size pager in
  let pages = Repro_util.Vec.create () in
  let first_nids = Repro_util.Vec.create () in
  let buf = Bytes.make page_size '\000' in
  let off = ref header_size in
  let count = ref 0 in
  let entries = ref 0 in
  let first_on_page = ref (-1) in
  let flush () =
    if !count > 0 then begin
      Codec.set_u16 buf 0 !count;
      let pid = Pager.alloc pager in
      Buffer_pool.write pool pid buf;
      Repro_util.Vec.push pages pid;
      Repro_util.Vec.push first_nids !first_on_page;
      Bytes.fill buf 0 page_size '\000';
      off := header_size;
      count := 0;
      first_on_page := -1
    end
  in
  for nid = 0 to Repro_graph.Data_graph.n_nodes g - 1 do
    match Repro_graph.Data_graph.value g nid with
    | None -> ()
    | Some v ->
      let max_len = page_size - header_size - record_overhead in
      let v = if String.length v > max_len then String.sub v 0 max_len else v in
      if !off + record_overhead + String.length v > page_size then flush ();
      if !first_on_page = -1 then first_on_page := nid;
      Codec.set_i64 buf !off nid;
      Codec.set_u16 buf (!off + 8) (String.length v);
      Bytes.blit_string v 0 buf (!off + record_overhead) (String.length v);
      off := !off + record_overhead + String.length v;
      incr count;
      incr entries
  done;
  flush ();
  { pool;
    pages = Repro_util.Vec.to_array pages;
    first_nids = Repro_util.Vec.to_array first_nids;
    entries = !entries
  }

let n_entries t = t.entries
let n_pages t = Array.length t.pages

(* Index of the page whose nid range may contain [nid]: the last page whose
   first nid is <= nid. *)
let locate t nid =
  let lo = ref 0 and hi = ref (Array.length t.first_nids) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.first_nids.(mid) <= nid then lo := mid else hi := mid
  done;
  if Array.length t.first_nids = 0 || t.first_nids.(!lo) > nid then None else Some !lo

let scan_page buf nid =
  let count = Codec.get_u16 buf 0 in
  let rec go off remaining =
    if remaining = 0 then None
    else begin
      let rec_nid = Codec.get_i64 buf off in
      let len = Codec.get_u16 buf (off + 8) in
      if rec_nid = nid then Some (Bytes.sub_string buf (off + record_overhead) len)
      else go (off + record_overhead + len) (remaining - 1)
    end
  in
  go header_size count

let lookup ?cost t nid =
  match locate t nid with
  | None -> None
  | Some idx ->
    (match cost with
     | Some c -> c.Cost.table_pages <- c.Cost.table_pages + 1
     | None -> ());
    scan_page (Buffer_pool.get t.pool t.pages.(idx)) nid

let matches ?cost t nid v =
  match lookup ?cost t nid with
  | Some v' -> String.equal v v'
  | None -> false

let filter_matching ?cost t candidates value =
  let last_page = ref (-1) in
  let keep nid =
    match locate t nid with
    | None -> false
    | Some idx ->
      (match cost with
       | Some c when idx <> !last_page ->
         last_page := idx;
         c.Cost.table_pages <- c.Cost.table_pages + 1
       | Some _ | None -> ());
      (match scan_page (Buffer_pool.get t.pool t.pages.(idx)) nid with
       | Some v -> String.equal v value
       | None -> false)
  in
  Array.of_seq (Seq.filter keep (Array.to_seq candidates))

let iter t f =
  Array.iter
    (fun pid ->
      let buf = Pager.unsafe_borrow (Buffer_pool.pager t.pool) pid in
      let count = Codec.get_u16 buf 0 in
      let off = ref header_size in
      for _ = 1 to count do
        let nid = Codec.get_i64 buf !off in
        let len = Codec.get_u16 buf (!off + 8) in
        f nid (Bytes.sub_string buf (!off + record_overhead) len);
        off := !off + record_overhead + len
      done)
    t.pages
