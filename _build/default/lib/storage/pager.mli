(** Simulated disk: an array of fixed-size pages with access counting.

    The "disk" is main memory, but every read and write is counted in
    {!Io_stats.t}, which is what the benchmark cost model consumes. Page
    contents are bytes; callers encode their records with {!Codec}. *)

type t

type pid = int
(** Page identifier, dense from 0. *)

val create : ?page_size:int -> unit -> t
(** [page_size] defaults to 8192 bytes, the block size used for the Index
    Fabric in the paper's experiments. *)

val page_size : t -> int
val n_pages : t -> int
val stats : t -> Io_stats.t

val alloc : t -> pid
(** Append a fresh zeroed page. Not counted as I/O (allocation happens at
    build time; builds report their own cost separately). *)

val read : t -> pid -> bytes
(** Copy of the page contents; counts one disk read.
    @raise Invalid_argument on an unknown pid. *)

val write : t -> pid -> bytes -> unit
(** Replace the page contents; counts one disk write. The buffer must be
    exactly [page_size] long. @raise Invalid_argument otherwise. *)

val unsafe_borrow : t -> pid -> bytes
(** The live page buffer without copying or counting — only for the buffer
    pool implementation. *)
