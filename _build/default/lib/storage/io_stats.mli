(** Counters for the simulated disk and buffer pool. *)

type t = {
  mutable disk_reads : int;  (** pages fetched from the simulated disk *)
  mutable disk_writes : int;  (** pages written to the simulated disk *)
  mutable cache_hits : int;  (** page requests served by the buffer pool *)
  mutable cache_misses : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val total_page_requests : t -> int
val pp : Format.formatter -> t -> unit
