let set_i64 buf off v = Bytes.set_int64_le buf off (Int64.of_int v)
let get_i64 buf off = Int64.to_int (Bytes.get_int64_le buf off)

let set_u16 buf off v =
  if v < 0 || v > 0xFFFF then invalid_arg (Printf.sprintf "Codec.set_u16: %d out of range" v);
  Bytes.set_uint16_le buf off v

let get_u16 buf off = Bytes.get_uint16_le buf off
