(* Classic LRU: hash table keyed by pid + intrusive doubly-linked list in
   recency order (head = most recent). *)

type entry = {
  pid : Pager.pid;
  mutable data : bytes;
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  pager : Pager.t;
  cap : int;
  table : (Pager.pid, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
}

let create pager ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { pager; cap = capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let capacity t = t.cap
let pager t = t.pager

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let evict_if_full t =
  if Hashtbl.length t.table >= t.cap then
    match t.tail with
    | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.pid
    | None -> ()

let stats t = Pager.stats t.pager

let get t pid =
  match Hashtbl.find_opt t.table pid with
  | Some e ->
    (stats t).cache_hits <- (stats t).cache_hits + 1;
    unlink t e;
    push_front t e;
    e.data
  | None ->
    (stats t).cache_misses <- (stats t).cache_misses + 1;
    let data = Pager.read t.pager pid in
    evict_if_full t;
    let e = { pid; data; prev = None; next = None } in
    Hashtbl.add t.table pid e;
    push_front t e;
    data

let write t pid buf =
  Pager.write t.pager pid buf;
  match Hashtbl.find_opt t.table pid with
  | Some e ->
    e.data <- Bytes.copy buf;
    unlink t e;
    push_front t e
  | None -> ()

let flush t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let cached_pages t = Hashtbl.length t.table
