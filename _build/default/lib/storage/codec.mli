(** Little-endian fixed-width encodings shared by page layouts. *)

val set_i64 : bytes -> int -> int -> unit
(** Write an OCaml int (≤ 63 bits) as 8 bytes at the given offset. *)

val get_i64 : bytes -> int -> int

val set_u16 : bytes -> int -> int -> unit
(** @raise Invalid_argument when the value does not fit 16 bits. *)

val get_u16 : bytes -> int -> int
