(** A disk-resident B+-tree over integer keys with string payloads.

    Inner and leaf nodes live in pages of the shared {!Pager}; reads go
    through a {!Buffer_pool}. Used as the indexed backing for id maps and
    as an alternative {!Data_table} organization (the ablation benchmark
    compares the two). Keys are unique: inserting an existing key replaces
    its payload.

    Probes charge [table_pages] on the supplied {!Cost.t} — one unit per
    page on the root-to-leaf descent — so query processors can account for
    value-validation I/O uniformly. *)

type t

val create : Buffer_pool.t -> t
(** An empty tree (one leaf page). *)

val insert : t -> int -> string -> unit
(** @raise Invalid_argument when the payload cannot fit in a page. *)

val find : ?cost:Cost.t -> t -> int -> string option

val mem : ?cost:Cost.t -> t -> int -> bool

val range : ?cost:Cost.t -> t -> lo:int -> hi:int -> (int * string) list
(** All entries with [lo <= key <= hi], ascending; leaf pages are chained
    so the scan costs the descent plus one page per leaf touched. *)

val iter : t -> (int -> string -> unit) -> unit
(** Full ascending scan. *)

val cardinal : t -> int
val height : t -> int
val n_pages : t -> int
