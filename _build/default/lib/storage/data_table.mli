(** The data table: nid → data value, disk resident.

    The paper's QTYPE3 processing tests candidate nodes "by looking up the
    data table which keeps all node identifiers (nid) and corresponding data
    values". Records are packed into pages sorted by nid, with an in-memory
    sparse directory (first nid of each page), so a probe costs one page read
    plus an in-page scan — charged as [table_pages] on the {!Cost.t}. *)

type t

val build : Buffer_pool.t -> Repro_graph.Data_graph.t -> t
(** Store every node that has a data value. Values longer than what fits in
    one page are truncated (never the case for our datasets). *)

val n_entries : t -> int
val n_pages : t -> int

val lookup : ?cost:Cost.t -> t -> Repro_graph.Data_graph.nid -> string option

val matches : ?cost:Cost.t -> t -> Repro_graph.Data_graph.nid -> string -> bool
(** [matches t nid v] — the node has a data value equal to [v]. *)

val filter_matching :
  ?cost:Cost.t -> t -> Repro_graph.Data_graph.nid array -> string -> Repro_graph.Data_graph.nid array
(** Keep the candidates whose value equals the given string. The candidate
    array must be sorted ascending; each table page is charged once per
    call (consecutive candidates share pages — the per-query working-set
    cost model). *)

val iter : t -> (Repro_graph.Data_graph.nid -> string -> unit) -> unit
(** Iterate all (nid, value) records in nid order, bypassing the cache (used
    by index builders, e.g. to enumerate Index Fabric keys). *)
