lib/storage/codec.ml: Bytes Int64 Printf
