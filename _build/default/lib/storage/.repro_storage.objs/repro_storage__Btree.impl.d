lib/storage/btree.ml: Buffer_pool Bytes Codec Cost List Pager String
