lib/storage/data_table.ml: Array Buffer_pool Bytes Codec Cost Pager Repro_graph Repro_util Seq String
