lib/storage/pager.ml: Bytes Io_stats Printf Repro_util
