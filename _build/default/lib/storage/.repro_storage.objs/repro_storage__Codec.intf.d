lib/storage/codec.mli:
