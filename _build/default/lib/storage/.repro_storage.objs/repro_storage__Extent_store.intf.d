lib/storage/extent_store.mli: Buffer_pool Cost Repro_graph
