lib/storage/cost.ml: Format
