lib/storage/extent_store.ml: Array Buffer Buffer_pool Bytes Char Codec Cost Pager Repro_graph String
