lib/storage/data_table.mli: Buffer_pool Cost Repro_graph
