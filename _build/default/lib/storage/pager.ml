type pid = int

type t = {
  page_size : int;
  pages : bytes Repro_util.Vec.t;
  stats : Io_stats.t;
}

let create ?(page_size = 8192) () =
  if page_size < 64 then invalid_arg "Pager.create: page_size too small";
  { page_size; pages = Repro_util.Vec.create (); stats = Io_stats.create () }

let page_size t = t.page_size
let n_pages t = Repro_util.Vec.length t.pages
let stats t = t.stats

let alloc t =
  let pid = n_pages t in
  Repro_util.Vec.push t.pages (Bytes.make t.page_size '\000');
  pid

let check t pid =
  if pid < 0 || pid >= n_pages t then
    invalid_arg (Printf.sprintf "Pager: unknown page %d (have %d)" pid (n_pages t))

let read t pid =
  check t pid;
  t.stats.disk_reads <- t.stats.disk_reads + 1;
  Bytes.copy (Repro_util.Vec.get t.pages pid)

let write t pid buf =
  check t pid;
  if Bytes.length buf <> t.page_size then
    invalid_arg
      (Printf.sprintf "Pager.write: buffer is %d bytes, page size is %d" (Bytes.length buf)
         t.page_size);
  t.stats.disk_writes <- t.stats.disk_writes + 1;
  Repro_util.Vec.set t.pages pid (Bytes.copy buf)

let unsafe_borrow t pid =
  check t pid;
  Repro_util.Vec.get t.pages pid
