(** Direct (index-free) evaluation of the XPath subset on a data graph —
    the reference semantics for the planner and the fallback executor.

    Conventions on the graph encoding of Section 3:
    - the context of an absolute path is the document element (the graph
      root): [/a] selects its [a] children;
    - the descendant axis closes over {e non-attribute} edges only, matching
      the paper's QTYPE2 rule that the descendant axis does not traverse
      reference relationships; attribute and reference steps are taken
      explicitly ([//movie/@actor=>actor]);
    - [*] matches any non-attribute label;
    - a positional predicate selects by 1-based rank among the step's
      surviving matches under the same parent, in document order. *)

val eval : Repro_graph.Data_graph.t -> Xpath_ast.t -> Repro_graph.Data_graph.nid array
(** Results sorted ascending (document order). *)

val eval_string : Repro_graph.Data_graph.t -> string -> Repro_graph.Data_graph.nid array
(** Parse then {!eval}. @raise Invalid_argument on a parse error. *)

val eval_steps :
  Repro_graph.Data_graph.t ->
  context:Repro_graph.Data_graph.nid array ->
  Xpath_ast.step list ->
  Repro_graph.Data_graph.nid array
(** Evaluate residual steps from an explicit context set (used by the
    planner to continue from index-produced seeds). *)

val filter_predicates :
  Repro_graph.Data_graph.t ->
  Repro_graph.Data_graph.nid array ->
  Xpath_ast.predicate list ->
  Repro_graph.Data_graph.nid array
(** Keep the nodes satisfying every predicate. Positional predicates are
    not meaningful without step context and are rejected.
    @raise Invalid_argument on {!Xpath_ast.Position}. *)
