type axis =
  | Child
  | Descendant

type nametest =
  | Name of string
  | Any

type predicate =
  | Text_equals of string
  | Exists of relpath
  | Position of int

and step = {
  axis : axis;
  test : nametest;
  predicates : predicate list;
}

and relpath = step list

type t = {
  absolute : bool;
  steps : step list;
}

let rec equal_step (a : step) (b : step) =
  a.axis = b.axis && a.test = b.test
  && List.length a.predicates = List.length b.predicates
  && List.for_all2 equal_predicate a.predicates b.predicates

and equal_predicate a b =
  match a, b with
  | Text_equals x, Text_equals y -> String.equal x y
  | Position x, Position y -> x = y
  | Exists x, Exists y -> List.length x = List.length y && List.for_all2 equal_step x y
  | (Text_equals _ | Position _ | Exists _), _ -> false

let equal a b =
  a.absolute = b.absolute
  && List.length a.steps = List.length b.steps
  && List.for_all2 equal_step a.steps b.steps

let test_to_string = function
  | Name n -> n
  | Any -> "*"

let rec step_to_buf buf (s : step) =
  Buffer.add_string buf (test_to_string s.test);
  List.iter
    (fun p ->
      Buffer.add_char buf '[';
      (match p with
       | Text_equals v ->
         Buffer.add_string buf "text()=\"";
         Buffer.add_string buf v;
         Buffer.add_char buf '"'
       | Position k -> Buffer.add_string buf (string_of_int k)
       | Exists rel -> relpath_to_buf buf rel);
      Buffer.add_char buf ']')
    s.predicates

and relpath_to_buf buf rel =
  List.iteri
    (fun i (s : step) ->
      (match i, s.axis with
       | 0, Child -> ()
       | 0, Descendant -> Buffer.add_string buf ".//"
       | _, Child -> Buffer.add_char buf '/'
       | _, Descendant -> Buffer.add_string buf "//");
      step_to_buf buf s)
    rel

let to_string t =
  let buf = Buffer.create 64 in
  List.iteri
    (fun i (s : step) ->
      (match i, s.axis, t.absolute with
       | 0, Child, true -> Buffer.add_char buf '/'
       | 0, Child, false | 0, Descendant, _ -> Buffer.add_string buf "//"
       | _, Child, _ -> Buffer.add_char buf '/'
       | _, Descendant, _ -> Buffer.add_string buf "//");
      step_to_buf buf s)
    t.steps;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
