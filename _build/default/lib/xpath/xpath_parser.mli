(** Parser for the XPath subset (see {!Xpath_ast} for the grammar). *)

val parse : string -> (Xpath_ast.t, string) result
(** Examples: [/PLAYS/PLAY/TITLE], [//actor/name], [//movie[@actor=>actor]],
    [//SPEECH[SPEAKER]/LINE], [//INDI/BIRT/DATE[text()="1 JAN 1900"]],
    [//SCENE/SPEECH[2]], [//movie[.//rating]/title]. *)

val parse_exn : string -> Xpath_ast.t
(** @raise Invalid_argument on a parse error. *)
