(** Planner: route an XPath over APEX where its shape allows, fall back to
    direct traversal otherwise.

    Plan shapes, in decreasing order of index leverage:
    - [Index_path]: the path is exactly a QTYPE1/2/3 query — fully answered
      by the index (one hash-tree lookup + joins, or the G_APEX rewriting);
    - [Seeded]: a [//a/b/...] prefix without predicates is answered by the
      index, the residual steps and predicates evaluated from the seed set
      by graph traversal;
    - [Scan]: no usable prefix (absolute paths, leading wildcard or
      predicate) — direct evaluation. *)

type t =
  | Index_path of Repro_pathexpr.Query.compiled
  | Seeded of {
      prefix : Repro_pathexpr.Label_path.t;
      self_predicates : Xpath_ast.predicate list;
          (** predicates of the last prefix step, applied to the seed set
              (never positional) *)
      residual : Xpath_ast.step list;
    }
  | Scan

val plan : Repro_graph.Data_graph.t -> Xpath_ast.t -> t
(** A path naming a label absent from the data plans to [Index_path] of an
    impossible query only when all labels resolve; otherwise [Scan] (the
    direct evaluator handles unknown names naturally). *)

val describe : t -> string
(** One-line rendering for EXPLAIN-style output. *)

val execute :
  ?cost:Repro_storage.Cost.t ->
  ?table:Repro_storage.Data_table.t ->
  Repro_apex.Apex.t ->
  Xpath_ast.t ->
  Repro_graph.Data_graph.nid array
(** Plan against the index's graph, then run. Results sorted ascending and
    always equal to {!Xpath_eval.eval} on the same path. *)

val execute_string :
  ?cost:Repro_storage.Cost.t ->
  ?table:Repro_storage.Data_table.t ->
  Repro_apex.Apex.t ->
  string ->
  Repro_graph.Data_graph.nid array
(** Parse, plan, run. @raise Invalid_argument on a parse error. *)
