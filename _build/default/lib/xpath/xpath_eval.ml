module G = Repro_graph.Data_graph
module Label = Repro_graph.Label
open Xpath_ast

(* matches within one step are (parent, node) pairs in discovery order;
   positional predicates rank them per parent *)
type matches = (G.nid * G.nid) list

let test_matches labels test l =
  match test with
  | Name n -> String.equal (Label.to_string labels l) n
  | Any -> not (Label.is_attribute labels l)

(* descendant-or-self closure over non-attribute edges *)
let closure g nodes =
  let labels = G.labels g in
  let n = G.n_nodes g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  Array.iter
    (fun v ->
      if not seen.(v) then begin
        seen.(v) <- true;
        Queue.add v queue
      end)
    nodes;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    acc := u :: !acc;
    G.iter_out g u (fun l v ->
        if (not (Label.is_attribute labels l)) && not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
  done;
  Repro_util.Int_sorted.of_unsorted (Array.of_list !acc)

let child_matches g test (context : G.nid array) : matches =
  let labels = G.labels g in
  let acc = ref [] in
  Array.iter
    (fun u -> G.iter_out g u (fun l v -> if test_matches labels test l then acc := (u, v) :: !acc))
    context;
  List.rev !acc

let rec apply_predicate g (ms : matches) = function
  | Text_equals v ->
    List.filter
      (fun (_, node) -> match G.value g node with Some v' -> String.equal v v' | None -> false)
      ms
  | Exists rel ->
    List.filter (fun (_, node) -> Array.length (eval_steps_pairs g [ (node, node) ] rel) > 0) ms
  | Position k ->
    (* rank per parent in discovery (document) order *)
    let counts = Hashtbl.create 16 in
    List.filter
      (fun (parent, _) ->
        let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts parent) in
        Hashtbl.replace counts parent c;
        c = k)
      ms

and eval_step g (context : matches) (s : step) : matches =
  let ctx_nodes = Repro_util.Int_sorted.of_unsorted (Array.of_list (List.map snd context)) in
  let base =
    match s.axis with
    | Child -> child_matches g s.test ctx_nodes
    | Descendant -> child_matches g s.test (closure g ctx_nodes)
  in
  List.fold_left (apply_predicate g) base s.predicates

and eval_steps_pairs g (context : matches) steps : G.nid array =
  let final = List.fold_left (eval_step g) context steps in
  Repro_util.Int_sorted.of_unsorted (Array.of_list (List.map snd final))

let eval_steps g ~context steps =
  eval_steps_pairs g (Array.to_list (Array.map (fun v -> (v, v)) context)) steps

let filter_predicates g nodes preds =
  if List.exists (function Position _ -> true | Text_equals _ | Exists _ -> false) preds then
    invalid_arg "Xpath_eval.filter_predicates: positional predicate without step context";
  let pairs = Array.to_list (Array.map (fun v -> (v, v)) nodes) in
  let final = List.fold_left (apply_predicate g) pairs preds in
  Repro_util.Int_sorted.of_unsorted (Array.of_list (List.map snd final))

let eval g (t : Xpath_ast.t) = eval_steps g ~context:[| G.root g |] t.steps

let eval_string g text = eval g (Xpath_parser.parse_exn text)
