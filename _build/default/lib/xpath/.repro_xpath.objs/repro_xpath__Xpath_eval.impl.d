lib/xpath/xpath_eval.ml: Array Hashtbl List Option Queue Repro_graph Repro_util String Xpath_ast Xpath_parser
