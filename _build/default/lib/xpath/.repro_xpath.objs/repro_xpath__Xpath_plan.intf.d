lib/xpath/xpath_plan.mli: Repro_apex Repro_graph Repro_pathexpr Repro_storage Xpath_ast
