lib/xpath/xpath_ast.ml: Buffer Format List String
