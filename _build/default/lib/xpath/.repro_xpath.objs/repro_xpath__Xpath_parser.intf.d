lib/xpath/xpath_parser.mli: Xpath_ast
