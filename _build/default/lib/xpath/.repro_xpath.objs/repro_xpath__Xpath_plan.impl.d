lib/xpath/xpath_plan.ml: List Option Printf Repro_apex Repro_graph Repro_pathexpr Xpath_ast Xpath_eval Xpath_parser
