lib/xpath/xpath_eval.mli: Repro_graph Xpath_ast
