lib/xpath/xpath_parser.ml: List Printf String Xpath_ast
