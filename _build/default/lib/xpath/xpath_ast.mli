(** Abstract syntax for the XPath subset layered over the path indexes.

    Grammar (a practical superset of the paper's QTYPE1/2/3 classes):

    {v
    path      ::= ('/' | '//') step (('/' | '//') step)*
    step      ::= nametest predicate*
    nametest  ::= NAME | '@' NAME | '*'
    predicate ::= '[' 'text()' '=' value ']'
                | '[' relpath ']'            (existence of a relative path)
                | '[' INTEGER ']'            (position among siblings)
    relpath   ::= step (('/' | '//') step)*
    v}

    A leading ['/'] anchors at the document root; a leading ['//'] matches
    anywhere. The dereference surface syntax [@a=>b] parses as the two steps
    [@a/b], mirroring {!Repro_pathexpr.Query}. *)

type axis =
  | Child  (** [/step] *)
  | Descendant  (** [//step] — descendant-or-self then child *)

type nametest =
  | Name of string  (** element or ['@']-attribute label *)
  | Any  (** [*]: any non-attribute label *)

type predicate =
  | Text_equals of string
  | Exists of relpath  (** a relative path with at least one result *)
  | Position of int  (** 1-based index among same-parent step matches *)

and step = {
  axis : axis;
  test : nametest;
  predicates : predicate list;
}

and relpath = step list
(** Relative paths inside predicates; the first step's axis is relative to
    the context node. *)

type t = {
  absolute : bool;  (** leading [/] (true) vs leading [//] (false) *)
  steps : step list;
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Parseable rendering. *)
