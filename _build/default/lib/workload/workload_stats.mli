(** Characteristics of a generated query set, for comparison with the
    paper's remarks in Section 6.1 ("the percentage of simple path
    expressions in the query workload ... was about 25%"). *)

type t = {
  queries : int;
  mean_length : float;  (** mean number of steps *)
  max_length : int;
  with_dereference : float;  (** fraction containing an ['@'] step *)
  root_anchored : float;
      (** fraction whose label path is a prefix of some root path — the
          paper's "simple path expressions" *)
  distinct : int;  (** distinct queries *)
}

val compute : Repro_graph.Data_graph.t -> Repro_pathexpr.Query.t array -> t
(** QTYPE2 queries count with length 2 and are never root-anchored;
    unknown-label queries are never root-anchored. *)

val pp : Format.formatter -> t -> unit
