lib/workload/query_log.ml: Array List Repro_graph Repro_pathexpr
