lib/workload/workload_stats.mli: Format Repro_graph Repro_pathexpr
