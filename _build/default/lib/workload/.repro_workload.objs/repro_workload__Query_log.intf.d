lib/workload/query_log.mli: Repro_graph Repro_pathexpr
