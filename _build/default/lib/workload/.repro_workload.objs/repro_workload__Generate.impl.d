lib/workload/generate.ml: Array Float List Random Repro_graph Repro_pathexpr Simple_paths String
