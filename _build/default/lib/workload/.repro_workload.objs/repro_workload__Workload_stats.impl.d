lib/workload/workload_stats.ml: Array Format Hashtbl List Repro_graph Repro_pathexpr String
