lib/workload/generate.mli: Random Repro_graph Repro_pathexpr
