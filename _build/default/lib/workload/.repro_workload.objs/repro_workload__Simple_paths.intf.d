lib/workload/simple_paths.mli: Random Repro_graph Repro_pathexpr
