lib/workload/simple_paths.ml: Array Hashtbl List Random Repro_graph Repro_util
