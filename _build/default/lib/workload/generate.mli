(** Random query generation following the protocol of Section 6.1.

    The paper stores all simple path expressions and samples them; on
    cyclic graphs that set is unbounded, so we sample simple path
    expressions by random walks instead (every generated query is still
    backed by at least one instance in the data). Counts default to the
    paper's: 5000 QTYPE1, 500 QTYPE2, 1000 QTYPE3; the workload used for
    mining is a 20% sample of the QTYPE1 set. *)

val qtype1 :
  ?n:int -> Random.State.t -> Repro_graph.Data_graph.t -> Repro_pathexpr.Query.t array
(** [//l_i/.../l_n]: a random contiguous subsequence of a random simple
    path expression with the descendant axis prepended (default [n] =
    5000). *)

val qtype2 :
  ?n:int -> Random.State.t -> Repro_graph.Data_graph.t -> Repro_pathexpr.Query.t array
(** [//l_i//l_j]: two distinct non-attribute labels chosen in order from a
    random simple path expression (default [n] = 500). Results may be
    empty, as in the paper. *)

val qtype3 :
  ?n:int -> Random.State.t -> Repro_graph.Data_graph.t -> Repro_pathexpr.Query.t array
(** [//l_i/.../l_n\[text()=v\]]: a random suffix of a walk ending on a value
    node, with that node's value — results are non-empty by construction
    (default [n] = 1000). Dereference steps never appear (Section 6.1: the
    Index Fabric keeps no dereference information), so walks through
    ['@'] labels are re-drawn. *)

val sample :
  Random.State.t -> fraction:float -> Repro_pathexpr.Query.t array -> Repro_pathexpr.Query.t array
(** Uniform sample without replacement, e.g. [~fraction:0.2] for the query
    workload handed to the miner. *)
