module G = Repro_graph.Data_graph
module Query = Repro_pathexpr.Query

type t = {
  queries : int;
  mean_length : float;
  max_length : int;
  with_dereference : float;
  root_anchored : float;
  distinct : int;
}

(* the query path is a prefix of some root path: walk the instance sets
   starting from the root only *)
let is_root_anchored g path =
  let rec go frontier = function
    | [] -> true
    | l :: rest ->
      let next = ref [] in
      List.iter (fun u -> G.iter_out g u (fun l' v -> if l = l' then next := v :: !next)) frontier;
      (match !next with
       | [] -> false
       | frontier -> go frontier rest)
  in
  go [ G.root g ] path

let compute g queries =
  let labels = G.labels g in
  let n = Array.length queries in
  let total_len = ref 0 in
  let max_len = ref 0 in
  let derefs = ref 0 in
  let anchored = ref 0 in
  let seen = Hashtbl.create n in
  Array.iter
    (fun q ->
      Hashtbl.replace seen (Query.to_string q) ();
      let steps =
        match q with
        | Query.Qtype1 steps | Query.Qtype3 (steps, _) -> steps
        | Query.Qtype2 (a, b) -> [ a; b ]
      in
      let len = List.length steps in
      total_len := !total_len + len;
      if len > !max_len then max_len := len;
      if List.exists (fun s -> String.length s > 0 && s.[0] = '@') steps then incr derefs;
      match q with
      | Query.Qtype2 _ -> ()
      | Query.Qtype1 _ | Query.Qtype3 _ ->
        (match Query.compile labels q with
         | Some (Query.C1 p) | Some (Query.C3 (p, _)) ->
           if is_root_anchored g p then incr anchored
         | Some (Query.C2 _) | None -> ()))
    queries;
  { queries = n;
    mean_length = (if n = 0 then 0.0 else float_of_int !total_len /. float_of_int n);
    max_length = !max_len;
    with_dereference = (if n = 0 then 0.0 else float_of_int !derefs /. float_of_int n);
    root_anchored = (if n = 0 then 0.0 else float_of_int !anchored /. float_of_int n);
    distinct = Hashtbl.length seen
  }

let pp ppf t =
  Format.fprintf ppf
    "%d queries (%d distinct), mean length %.2f (max %d), %.0f%% with dereference, %.0f%% root-anchored"
    t.queries t.distinct t.mean_length t.max_length
    (100. *. t.with_dereference)
    (100. *. t.root_anchored)
