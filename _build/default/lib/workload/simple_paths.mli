(** Simple path expressions: label paths of the root node (Section 6.1).

    Two ways to obtain them: exhaustive enumeration (exact, for small or
    tree-shaped data and for tests) and random walks (sampling, scales to
    cyclic graphs where the set of simple path expressions is unbounded). *)

val enumerate :
  ?max_length:int ->
  ?limit:int ->
  Repro_graph.Data_graph.t ->
  Repro_pathexpr.Label_path.t list
(** All distinct label paths starting at the root, up to [max_length]
    (default 16) labels, stopping after [limit] (default 100_000) paths.
    Implemented by a depth-first walk of the determinized label structure,
    so each returned path is distinct and is guaranteed to have at least one
    instance in the data. *)

val random_walk :
  Random.State.t ->
  ?max_length:int ->
  ?stop_probability:float ->
  ?attribute_bias:float ->
  Repro_graph.Data_graph.t ->
  (Repro_graph.Label.t * Repro_graph.Data_graph.nid) list
(** A random root-to-somewhere path as [(label, node)] steps, at least one
    step long. After each step the walk halts with [stop_probability]
    (default 0.25) or when out-degree is zero or [max_length] (default 20)
    is reached. [attribute_bias] (default 1.0) multiplies the choice weight
    of ['@'] edges: values above 1 steer walks into reference chains, which
    is how sampling-by-walk approximates the paper's uniform choice among
    {e distinct} simple path expressions — on graph data those are
    dominated by reference-crossing paths. @raise Invalid_argument if the
    root has no outgoing edges. *)

val walk_to_value :
  Random.State.t ->
  ?max_length:int ->
  ?max_attempts:int ->
  Repro_graph.Data_graph.t ->
  ((Repro_graph.Label.t * Repro_graph.Data_graph.nid) list * string) option
(** A random walk that ends on a node carrying a data value, paired with
    that value (for generating QTYPE3 queries with non-empty results).
    [None] if no such walk was found within [max_attempts] (default 64)
    tries. *)
