module G = Repro_graph.Data_graph
module Label = Repro_graph.Label
module Query = Repro_pathexpr.Query

let label_names g steps = List.map (fun (l, _) -> Label.to_string (G.labels g) l) steps

(* random contiguous subsequence: 0 <= i <= j < len, uniform over pairs *)
let random_span rand len =
  let i = Random.State.int rand len in
  let j = i + Random.State.int rand (len - i) in
  (i, j)

let sub_list l i j =
  List.filteri (fun k _ -> k >= i && k <= j) l

let qtype1 ?(n = 5000) rand g =
  Array.init n (fun _ ->
      (* long walks: the paper samples stored simple path expressions, most
         of which are deep (reference-crossing) paths *)
      let steps =
        Simple_paths.random_walk rand ~stop_probability:0.08 ~max_length:12 ~attribute_bias:6.0 g
      in
      let names = label_names g steps in
      let i, j = random_span rand (List.length names) in
      Query.Qtype1 (sub_list names i j))

let qtype2 ?(n = 500) rand g =
  let labels = G.labels g in
  let rec draw attempts =
    if attempts = 0 then None
    else begin
      let steps = Simple_paths.random_walk rand ~stop_probability:0.1 g in
      let plain =
        List.filter_map
          (fun (l, _) -> if Label.is_attribute labels l then None else Some (Label.to_string labels l))
          steps
      in
      (* two positions with distinct labels, order preserved *)
      let arr = Array.of_list plain in
      let len = Array.length arr in
      if len < 2 then draw (attempts - 1)
      else begin
        let i = Random.State.int rand (len - 1) in
        let j = i + 1 + Random.State.int rand (len - i - 1) in
        if String.equal arr.(i) arr.(j) then draw (attempts - 1) else Some (arr.(i), arr.(j))
      end
    end
  in
  Array.init n (fun _ ->
      match draw 200 with
      | Some (a, b) -> Query.Qtype2 (a, b)
      | None -> invalid_arg "Generate.qtype2: could not find two distinct labels on any path")

let qtype3 ?(n = 1000) rand g =
  let labels = G.labels g in
  let rec draw attempts =
    if attempts = 0 then
      invalid_arg "Generate.qtype3: no walks ending on a value node without dereferences"
    else
      match Simple_paths.walk_to_value rand g with
      | None -> draw (attempts - 1)
      | Some (steps, value) ->
        if List.exists (fun (l, _) -> Label.is_attribute labels l) steps then draw (attempts - 1)
        else begin
          let names = label_names g steps in
          let len = List.length names in
          (* favour long suffixes: many QTYPE3 queries name (nearly) the
             whole path to the value, which is what makes their candidate
             sets small on irregularly structured data *)
          let i = if Random.State.float rand 1.0 < 0.7 then 0 else Random.State.int rand len in
          Query.Qtype3 (sub_list names i (len - 1), value)
        end
  in
  Array.init n (fun _ -> draw 200)

let sample rand ~fraction queries =
  if fraction <= 0.0 || fraction > 1.0 then invalid_arg "Generate.sample: fraction must be in (0, 1]";
  let n = Array.length queries in
  let k = max 1 (int_of_float (Float.round (fraction *. float_of_int n))) in
  (* partial Fisher-Yates: the first k positions of a shuffled copy *)
  let copy = Array.copy queries in
  for i = 0 to min (k - 1) (n - 2) do
    let j = i + Random.State.int rand (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 (min k n)
