type t = {
  ring : Repro_pathexpr.Label_path.t array;
  capacity : int;
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Query_log.create: capacity must be positive";
  { ring = Array.make capacity []; capacity; total = 0 }

let record t path =
  t.ring.(t.total mod t.capacity) <- path;
  t.total <- t.total + 1

let record_query t labels q =
  let resolve steps =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | s :: tl ->
        (match Repro_graph.Label.find labels s with
         | Some l -> go (l :: acc) tl
         | None -> None)
    in
    go [] steps
  in
  match q with
  | Repro_pathexpr.Query.Qtype1 steps | Repro_pathexpr.Query.Qtype3 (steps, _) ->
    (match resolve steps with Some p when p <> [] -> record t p | Some _ | None -> ())
  | Repro_pathexpr.Query.Qtype2 _ -> ()

let length t = min t.total t.capacity
let total_recorded t = t.total

let to_workload t =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.total mod t.capacity in
  List.init n (fun i -> t.ring.((start + i) mod t.capacity))

let clear t = t.total <- 0
