(** Persistence: serialize a whole APEX instance — [G_APEX] nodes, extents,
    summary edges, and the [H_APEX] hash tree — into the page store, and
    load it back against the same data graph.

    The image is a flat integer stream stored like any extent, so it rides
    the same pager/buffer-pool machinery. Loading restores structure and
    extents exactly ({!Apex_spec.apex_extents} of the copy equals the
    original's); materialization state is not part of the image — call
    {!Apex.materialize} on the loaded index before running costed
    queries. *)

val save : Apex.t -> Repro_storage.Extent_store.t -> Repro_storage.Extent_store.handle
(** Write the index image at the store's tail. *)

val load :
  Repro_graph.Data_graph.t ->
  Repro_storage.Extent_store.t ->
  Repro_storage.Extent_store.handle ->
  Apex.t
(** Rebuild the index from an image. The graph must be the one the saved
    index was built over (extents reference its nids).
    @raise Invalid_argument on a malformed image. *)
