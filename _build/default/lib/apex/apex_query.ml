module G = Repro_graph.Data_graph
module Edge_set = Repro_graph.Edge_set
module Label = Repro_graph.Label
module Cost = Repro_storage.Cost
module Query = Repro_pathexpr.Query

let charge_join cost a b =
  match cost with
  | Some c -> c.Cost.join_edges <- c.Cost.join_edges + Edge_set.cardinal a + Edge_set.cardinal b
  | None -> ()

let union_extents ?cost t nodes =
  Edge_set.union_many (List.map (fun n -> Apex.load_extent ?cost t n) nodes)

(* locate a (sub)path and union the located nodes' extents; each lookup
   touches one hash-tree page (H_APEX is shallow: a handful of hnodes per
   suffix chain fit one page) *)
let locate_union ?cost t ~rev_path =
  (match cost with
   | Some c -> c.Cost.struct_pages <- c.Cost.struct_pages + 1
   | None -> ());
  match Hash_tree.locate ?cost (Apex.tree t) ~rev_path with
  | None -> None
  | Some (Hash_tree.Exact nodes) -> Some (union_extents ?cost t nodes, true)
  | Some (Hash_tree.Approx nodes) -> Some (union_extents ?cost t nodes, false)

let rec drop k l = if k = 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl

let eval_q1 ?cost t path =
  let n = List.length path in
  let rev = List.rev path in
  match locate_union ?cost t ~rev_path:rev with
  | None -> [||]
  | Some (ext, true) -> Edge_set.endpoints ext
  | Some (e_full, false) ->
    (* sweep prefixes l_i..l_j for j = n-1 downto 1, keeping each looked-up
       edge set; the sweep must reach an exactly-covered prefix by j = 1
       since every length-1 path is required *)
    let rec sweep j acc =
      if j = 0 then [||] (* unreachable: length-1 lookups are exact *)
      else
        let rev_prefix = drop (n - j) rev in
        match locate_union ?cost t ~rev_path:rev_prefix with
        | None -> [||]
        | Some (ext, true) ->
          (* multi-way join back up to l_n *)
          let cur =
            List.fold_left
              (fun cur e ->
                if Edge_set.is_empty cur then cur
                else begin
                  charge_join cost cur e;
                  Edge_set.join cur e
                end)
              ext acc
          in
          Edge_set.endpoints cur
        | Some (ext, false) -> sweep (j - 1) (ext :: acc)
    in
    sweep (n - 1) [ e_full ]

(* QTYPE2 is the paper's two-phase plan: (1) query pruning and rewriting by
   navigating G_APEX from the nodes whose incoming label is [la], collecting
   every label sequence la.m_1...m_k.lb reachable over non-attribute edges
   (Section 6.1's no-dereference rule); (2) each rewritten sequence is then
   evaluated like QTYPE1, so sequences that are stored frequent suffixes
   come straight out of H_APEX — the adaptivity win. *)
let eval_q2 ?cost ?(max_rewrite_depth = 16) t la lb =
  let labels = G.labels (Apex.graph t) in
  match Hash_tree.locate ?cost (Apex.tree t) ~rev_path:[ la ] with
  | None | Some (Hash_tree.Approx _) -> [||]
  | Some (Hash_tree.Exact starts) ->
    let pages_seen = Hashtbl.create 32 in
    let visit (node : Gapex.node) =
      match cost with
      | Some c ->
        c.Cost.index_node_visits <- c.Cost.index_node_visits + 1;
        let page = node.Gapex.id / 128 in
        if not (Hashtbl.mem pages_seen page) then begin
          Hashtbl.add pages_seen page ();
          c.Cost.struct_pages <- c.Cost.struct_pages + 1
        end
      | None -> ()
    in
    (* Summary nodes may repeat along a rewriting (recursive structures
       summarize to cycles), so the search cannot simply forbid revisits;
       instead the running extent join is carried as a pruning oracle — a
       branch whose join is empty has no data witness and is cut, which is
       also what terminates cycles, with [max_rewrite_depth] as a backstop. *)
    let extent_cache : (int, Edge_set.t) Hashtbl.t = Hashtbl.create 64 in
    let extent_of (node : Gapex.node) =
      match Hashtbl.find_opt extent_cache node.Gapex.id with
      | Some e -> e
      | None ->
        let e = Apex.load_extent ?cost t node in
        Hashtbl.add extent_cache node.Gapex.id e;
        e
    in
    let rewritings : (Label.t list, unit) Hashtbl.t = Hashtbl.create 32 in
    let rec rewrite (node : Gapex.node) cur rev_seq depth =
      visit node;
      List.iter
        (fun (l, (y : Gapex.node)) ->
          if not (Label.is_attribute labels l) then begin
            (match cost with
             | Some c -> c.Cost.index_edge_lookups <- c.Cost.index_edge_lookups + 1
             | None -> ());
            let ey = extent_of y in
            charge_join cost cur ey;
            let nxt = Edge_set.join cur ey in
            if not (Edge_set.is_empty nxt) then begin
              let rev_seq = l :: rev_seq in
              if l = lb then Hashtbl.replace rewritings (List.rev rev_seq) ();
              if depth < max_rewrite_depth then rewrite y nxt rev_seq (depth + 1)
            end
          end)
        (Gapex.out_edges node)
    in
    List.iter (fun (start : Gapex.node) -> rewrite start (extent_of start) [ la ] 1) starts;
    let results =
      Hashtbl.fold (fun seq () acc -> eval_q1 ?cost t seq :: acc) rewritings []
    in
    Repro_util.Int_sorted.union_many results

let eval_q3 ?cost ?table t path value =
  let candidates = eval_q1 ?cost t path in
  match table with
  | Some tbl -> Repro_storage.Data_table.filter_matching ?cost tbl candidates value
  | None ->
    let keep nid =
      match G.value (Apex.graph t) nid with
      | Some v -> String.equal v value
      | None -> false
    in
    Array.of_seq (Seq.filter keep (Array.to_seq candidates))

let eval ?cost ?table ?max_rewrite_depth t compiled =
  match compiled with
  | Query.C1 path -> eval_q1 ?cost t path
  | Query.C2 (la, lb) -> eval_q2 ?cost ?max_rewrite_depth t la lb
  | Query.C3 (path, value) -> eval_q3 ?cost ?table t path value

let eval_query ?cost ?table t q =
  match Query.compile (G.labels (Apex.graph t)) q with
  | Some compiled -> eval ?cost ?table t compiled
  | None -> [||]
