(* Image layout (flat ints):
     [magic] [n_nodes] [root_index]
     per node (in index order):
       [extent_len] packed-edge*  [out_degree] ([label] [target_index])*
     hash-tree stream (Hash_tree.encode format)                          *)

module Edge_set = Repro_graph.Edge_set
module Vec = Repro_util.Vec

let magic = 0x41504558 (* "APEX" *)

let save apex store =
  let gapex = Apex.summary apex in
  let nodes = Gapex.reachable gapex in
  let index_of = Hashtbl.create (List.length nodes) in
  List.iteri (fun i (n : Gapex.node) -> Hashtbl.add index_of n.Gapex.id i) nodes;
  let node_index (n : Gapex.node) =
    match Hashtbl.find_opt index_of n.Gapex.id with
    | Some i -> i
    | None -> invalid_arg "Apex_persist.save: hash tree references an unreachable node"
  in
  let out = Vec.create ~capacity:1024 () in
  Vec.push out magic;
  Vec.push out (List.length nodes);
  Vec.push out (node_index (Gapex.xroot gapex));
  List.iter
    (fun (n : Gapex.node) ->
      let extent = (n.Gapex.extent :> int array) in
      Vec.push out (Array.length extent);
      Array.iter (Vec.push out) extent;
      let edges = Gapex.out_edges n in
      Vec.push out (List.length edges);
      List.iter
        (fun (l, y) ->
          Vec.push out l;
          Vec.push out (node_index y))
        edges)
    nodes;
  List.iter (Vec.push out) (Hash_tree.encode (Apex.tree apex) ~node_index);
  Repro_storage.Extent_store.append_ints store (Vec.to_array out)

let load graph store handle =
  let arr = Repro_storage.Extent_store.load_ints store handle in
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length arr then invalid_arg "Apex_persist.load: truncated image"
    else begin
      let v = arr.(!pos) in
      incr pos;
      v
    end
  in
  if next () <> magic then invalid_arg "Apex_persist.load: bad magic";
  let n_nodes = next () in
  let root_index = next () in
  if root_index < 0 || root_index >= n_nodes then invalid_arg "Apex_persist.load: bad root";
  (* first pass: read extents and edge lists *)
  let extents = Array.make n_nodes Edge_set.empty in
  let edges = Array.make n_nodes [] in
  for i = 0 to n_nodes - 1 do
    let len = next () in
    let packed = Array.init len (fun _ -> next ()) in
    extents.(i) <- Edge_set.of_packed_array packed;
    let deg = next () in
    edges.(i) <- List.init deg (fun _ ->
        let l = next () in
        let target = next () in
        (l, target))
  done;
  (* materialize the node objects: the root first (Gapex.create), the rest
     via new_node, then rewire *)
  let gapex = Gapex.create ~root_extent:extents.(root_index) in
  let nodes =
    Array.init n_nodes (fun i ->
        if i = root_index then Gapex.xroot gapex
        else begin
          let n = Gapex.new_node gapex in
          n.Gapex.extent <- extents.(i);
          n
        end)
  in
  Array.iteri
    (fun i adj ->
      List.iter
        (fun (l, target) ->
          if target < 0 || target >= n_nodes then invalid_arg "Apex_persist.load: bad edge";
          Gapex.make_edge nodes.(i) l nodes.(target))
        adj)
    edges;
  let tree = Hash_tree.decode ~node_of:(fun i ->
      if i < 0 || i >= n_nodes then invalid_arg "Apex_persist.load: bad slot index"
      else nodes.(i)) arr ~pos
  in
  if !pos <> Array.length arr then invalid_arg "Apex_persist.load: trailing data";
  Apex.assemble ~graph ~gapex ~tree
