(** Declarative reference semantics of APEX (Definitions 6–10), used to
    property-test the operational algorithms on acyclic data.

    For each required path [p], the target edge set [T^R(p)] is, by the
    Q_G/Q_A set algebra of Definition 9, exactly the set of incoming edges
    whose root label path has [p] as its {e longest required suffix}. This
    module computes those buckets directly by enumerating every root-to-node
    data path — exponential in the worst case, so only suitable for the
    small random DAGs the tests generate. *)

val required_of_workload :
  Repro_graph.Data_graph.t ->
  workload:Repro_pathexpr.Label_path.t list ->
  min_support:float ->
  Repro_pathexpr.Label_path.t list
(** Definition 6 via the standalone miner: frequent workload subpaths plus
    every length-1 label of the data. *)

val target_edge_sets :
  Repro_graph.Data_graph.t ->
  required:Repro_pathexpr.Label_path.t list ->
  (Repro_pathexpr.Label_path.t * Repro_graph.Edge_set.t) list
(** [(p, T^R(p))] for every required path with a non-empty target edge set,
    sorted by path. The data graph must be acyclic.
    @raise Invalid_argument on cyclic data. *)

val apex_extents :
  Apex.t -> (Repro_pathexpr.Label_path.t * Repro_graph.Edge_set.t) list
(** The operational counterpart: every hash-tree slot holding a node, as
    [(slot's suffix, node's extent)], sorted. Remainder slots report their
    hnode's suffix — the same key {!target_edge_sets} uses, since a
    remainder holds exactly the paths whose longest required suffix is the
    hnode's path. *)
