lib/apex/apex_query.mli: Apex Repro_graph Repro_pathexpr Repro_storage
