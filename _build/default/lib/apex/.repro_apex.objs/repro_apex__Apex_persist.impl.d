lib/apex/apex_persist.ml: Apex Array Gapex Hash_tree Hashtbl List Repro_graph Repro_storage Repro_util
