lib/apex/apex_spec.ml: Apex Array Gapex Hash_tree Hashtbl List Repro_graph Repro_mining Repro_pathexpr Repro_util
