lib/apex/hash_tree.ml: Array Gapex Hashtbl List Repro_graph Repro_pathexpr Repro_storage
