lib/apex/hash_tree.mli: Gapex Repro_graph Repro_pathexpr Repro_storage
