lib/apex/gapex.ml: Hashtbl List Repro_graph Repro_storage
