lib/apex/apex_persist.mli: Apex Repro_graph Repro_storage
