lib/apex/apex_spec.mli: Apex Repro_graph Repro_pathexpr
