lib/apex/gapex.mli: Hashtbl Repro_graph Repro_storage
