lib/apex/apex.ml: Array Gapex Hash_tree Hashtbl List Repro_graph Repro_mining Repro_storage Repro_util Stack
