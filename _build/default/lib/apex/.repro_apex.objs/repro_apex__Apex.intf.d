lib/apex/apex.mli: Gapex Hash_tree Repro_graph Repro_pathexpr Repro_storage
