lib/apex/apex_query.ml: Apex Array Gapex Hash_tree Hashtbl List Repro_graph Repro_pathexpr Repro_storage Repro_util Seq String
