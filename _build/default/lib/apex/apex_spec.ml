module G = Repro_graph.Data_graph
module Edge_set = Repro_graph.Edge_set
module Label_path = Repro_pathexpr.Label_path

let required_of_workload g ~workload ~min_support =
  let all_labels = List.init (Repro_graph.Label.count (G.labels g)) (fun i -> i) in
  Repro_mining.Path_miner.required ~min_support ~all_labels workload

(* longest required suffix of [rev_path] (a reversed label path), using a
   reverse trie of the required set *)
module Trie = struct
  type t = {
    children : (int, t) Hashtbl.t;
    mutable terminal : Label_path.t option;  (* the required path ending here *)
  }

  let create () = { children = Hashtbl.create 8; terminal = None }

  let insert t p =
    let rec go node = function
      | [] -> node.terminal <- Some p
      | l :: rest ->
        let child =
          match Hashtbl.find_opt node.children l with
          | Some c -> c
          | None ->
            let c = create () in
            Hashtbl.add node.children l c;
            c
        in
        go child rest
    in
    go t (List.rev p)

  let longest_suffix t rev_path =
    let rec go node best = function
      | [] -> best
      | l :: rest ->
        (match Hashtbl.find_opt node.children l with
         | Some c -> go c (match c.terminal with Some p -> Some p | None -> best) rest
         | None -> best)
    in
    go t None rev_path
end

let check_acyclic g =
  let n = G.n_nodes g in
  let state = Array.make n 0 in
  (* 0 = unseen, 1 = on stack, 2 = done *)
  let rec visit v =
    if state.(v) = 1 then invalid_arg "Apex_spec: data graph is cyclic"
    else if state.(v) = 0 then begin
      state.(v) <- 1;
      G.iter_out g v (fun _ w -> visit w);
      state.(v) <- 2
    end
  in
  for v = 0 to n - 1 do
    visit v
  done

let target_edge_sets g ~required =
  check_acyclic g;
  let trie = Trie.create () in
  List.iter (Trie.insert trie) required;
  let buckets : (Label_path.t, int Repro_util.Vec.t) Hashtbl.t = Hashtbl.create 64 in
  let add p edge =
    let vec =
      match Hashtbl.find_opt buckets p with
      | Some v -> v
      | None ->
        let v = Repro_util.Vec.create () in
        Hashtbl.add buckets p v;
        v
    in
    Repro_util.Vec.push vec edge
  in
  (* enumerate every root data path (finite: acyclic) *)
  let rec walk u rev_labels =
    G.iter_out g u (fun l v ->
        let rev_labels = l :: rev_labels in
        (match Trie.longest_suffix trie rev_labels with
         | Some p -> add p (Edge_set.pack u v)
         | None -> ());
        walk v rev_labels)
  in
  walk (G.root g) [];
  Hashtbl.fold
    (fun p vec acc -> (p, Edge_set.of_packed_array (Repro_util.Vec.to_array vec)) :: acc)
    buckets []
  |> List.sort (fun (a, _) (b, _) -> Label_path.compare a b)

let apex_extents t =
  let acc = ref [] in
  Hash_tree.iter_slots (Apex.tree t) (fun suffix slot _is_remainder ->
      match Hash_tree.slot_get slot with
      | Some node -> acc := (suffix, node.Gapex.extent) :: !acc
      | None -> ());
  List.sort (fun (a, _) (b, _) -> Label_path.compare a b) !acc
