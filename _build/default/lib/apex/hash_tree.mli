(** The hash tree [H_APEX] (Sections 4–5).

    Label paths are stored in {e reverse}: the root hnode (HashHead) is
    keyed by the last label of a path, subtrees by earlier labels. Each
    entry carries the five fields of Figure 7 — label, count, new, xnode,
    next — and every hnode additionally has a [remainder] slot holding the
    [G_APEX] node for "all paths ending with this suffix not covered by a
    longer required path" (Definition 9's target edge sets).

    Invariant maintained across extraction + update: an entry never has
    both a non-empty [next] and a non-empty [xnode]. *)

type t

type slot
(** A mutable xnode field — either an entry's or a remainder's. *)

val create : unit -> t

val slot_get : slot -> Gapex.node option
val slot_set : slot -> Gapex.node option -> unit

(** {1 Lookup (Figure 9)} *)

val lookup_slot :
  ?cost:Repro_storage.Cost.t ->
  ?create_head:bool ->
  t ->
  rev_path:Repro_graph.Label.t list ->
  slot option
(** [rev_path] is the label path last-label-first (lookup order). Returns
    the slot representing the {e longest required suffix} of the path: the
    matched entry's slot when it is a maximal suffix, otherwise the
    appropriate remainder slot. With [create_head] (update-time behaviour,
    default false) a missing HashHead entry is created — length-1 paths are
    always required; without it a missing HashHead entry yields [None]. *)

type located =
  | Exact of Gapex.node list
      (** the stored suffixes cover exactly the queried path; the nodes'
          extents union to [T(path)] *)
  | Approx of Gapex.node list
      (** only a shorter suffix is stored; the nodes over-approximate and a
          join pass is needed *)

val locate : ?cost:Repro_storage.Cost.t -> t -> rev_path:Repro_graph.Label.t list -> located option
(** Query-time location: [None] means the last label is unknown (empty
    result). [Exact nodes] collects every node under the matched subtree
    (all longer-suffix entries plus remainders). *)

(** {1 Workload extraction (Figure 8)} *)

val reset_marks : t -> unit
(** Set all counts to 0 and all new-flags to false (line 1). *)

val count_workload : t -> Repro_pathexpr.Label_path.t list -> unit
(** Count every distinct subpath of every query, creating entries as
    needed; a query containing a subpath several times counts once. *)

val prune : t -> threshold:float -> unit
(** Remove entries with count below [threshold] (never from HashHead),
    dropping emptied hnodes, and invalidate the xnode slots whose contents
    the change affects (Figure 8 lines 10–15; additionally, deleting an
    entry invalidates its sibling remainder, whose target edge set grows —
    a case Figure 8's pseudo-code does not spell out). *)

(** {1 Introspection} *)

val iter_slots : t -> (Repro_graph.Label.t list -> slot -> bool -> unit) -> unit
(** [f suffix slot is_remainder] for every slot in the tree; [suffix] is in
    path order (first label … last label). Remainder slots are visited with
    the suffix of their {e hnode}'s path. *)

val n_entries : t -> int
(** Total entries across all hnodes (HashHead included). *)

val check_invariant : t -> bool
(** No entry has both a subtree and an xnode. *)

(** {1 Persistence} *)

val encode : t -> node_index:(Gapex.node -> int) -> int list
(** Flat integer encoding of the whole tree (labels, counts, flags, slot
    node indices, subtree structure), for {!Apex_persist}. *)

val decode : node_of:(int -> Gapex.node) -> int array -> pos:int ref -> t
(** Inverse of {!encode}, reading from [arr] starting at [!pos] and
    advancing it. @raise Invalid_argument on a malformed image. *)
