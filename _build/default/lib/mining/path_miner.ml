module Label_path = Repro_pathexpr.Label_path

let distinct_subpaths ?max_length q =
  let subs = Label_path.subpaths q in
  match max_length with
  | None -> subs
  | Some k -> List.filter (fun p -> List.length p <= k) subs

let count_subpaths ?max_length queries =
  let counts : (Label_path.t, int ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun q ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt counts p with
          | Some r -> incr r
          | None -> Hashtbl.add counts p (ref 1))
        (distinct_subpaths ?max_length q))
    queries;
  Hashtbl.fold (fun p r acc -> (p, !r) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Label_path.compare a b)

let support_threshold ~min_support ~n_queries =
  (* an empty workload supports nothing: treat it as one phantom query so a
     positive minSup prunes every path *)
  min_support *. float_of_int (max 1 n_queries)

let frequent ~min_support queries =
  let threshold = support_threshold ~min_support ~n_queries:(List.length queries) in
  count_subpaths queries
  |> List.filter (fun (_, c) -> float_of_int c >= threshold)
  |> List.map fst

let required ~min_support ~all_labels queries =
  let freq = frequent ~min_support queries in
  let singles = List.map (fun l -> [ l ]) all_labels in
  List.sort_uniq Label_path.compare (freq @ singles)
