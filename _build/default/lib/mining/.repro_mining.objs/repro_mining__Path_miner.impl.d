lib/mining/path_miner.ml: Hashtbl List Repro_pathexpr
