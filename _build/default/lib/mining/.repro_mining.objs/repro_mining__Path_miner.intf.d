lib/mining/path_miner.mli: Repro_graph Repro_pathexpr
