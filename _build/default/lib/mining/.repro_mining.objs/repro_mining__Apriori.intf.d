lib/mining/apriori.mli: Repro_pathexpr
