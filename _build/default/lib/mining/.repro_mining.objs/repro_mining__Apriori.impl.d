lib/mining/apriori.ml: Array Hashtbl List Path_miner Repro_pathexpr
