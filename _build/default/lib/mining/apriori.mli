(** Level-wise (apriori-style) frequent-path mining.

    Section 5.2 notes that classic sequential-pattern mining's
    anti-monotonicity does not carry over to paths when subsequences are
    non-contiguous; for {e contiguous} subpaths it does hold — if
    [a.b.c] is frequent then both [a.b] and [b.c] are — which is the minor
    modification the paper alludes to. Candidates of length k are built by
    overlap-joining frequent paths of length k-1, then counted in one scan
    per level. Produces exactly the same result as
    {!Path_miner.frequent}. *)

val frequent :
  min_support:float ->
  Repro_pathexpr.Label_path.t list ->
  Repro_pathexpr.Label_path.t list
(** Frequent contiguous subpaths, sorted (same contract as
    {!Path_miner.frequent}). *)

val levels :
  min_support:float ->
  Repro_pathexpr.Label_path.t list ->
  Repro_pathexpr.Label_path.t list array
(** The frequent sets per level (index 0 = length-1 paths), exposing the
    lattice for the ablation benchmark. *)
