(** Frequently-used-path extraction — the naive one-scan algorithm.

    The support of a label path [p] is the fraction of workload queries that
    contain [p] as a contiguous subpath (Section 4). A query containing [p]
    several times still counts once. This standalone miner mirrors the
    counting that {!Repro_apex.Hash_tree} performs in place and serves as
    its test oracle and as the ablation baseline. *)

val count_subpaths :
  ?max_length:int ->
  Repro_pathexpr.Label_path.t list ->
  (Repro_pathexpr.Label_path.t * int) list
(** For every distinct subpath occurring in the workload (up to
    [max_length], default unlimited), the number of queries containing it.
    Sorted by path. *)

val support_threshold : min_support:float -> n_queries:int -> float
(** The count a path needs to be frequent: [min_support *. n_queries]
    (compared with [>=], matching the paper's example where 2 of 3 queries
    meet minSup 0.6). *)

val frequent :
  min_support:float ->
  Repro_pathexpr.Label_path.t list ->
  Repro_pathexpr.Label_path.t list
(** Label paths with support ≥ [min_support], sorted. *)

val required :
  min_support:float ->
  all_labels:Repro_graph.Label.t list ->
  Repro_pathexpr.Label_path.t list ->
  Repro_pathexpr.Label_path.t list
(** Definition 6: the frequent paths plus every length-1 path of the data's
    label set. *)
