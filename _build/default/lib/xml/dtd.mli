(** Document type definitions (internal-subset syntax).

    The paper's data model hinges on DTD attribute typing: "two particular
    attributes, ID and IDREF, allow us to represent the structure of XML
    data as a graph" (Section 3). This module parses the declarations that
    carry that typing — [<!ELEMENT ...>] content models and
    [<!ATTLIST ...>] attribute lists — exposes the ID/IDREF classification
    the graph encoder needs, and validates documents against the content
    models (Glushkov automata over child sequences).

    Supported: EMPTY, ANY, (#PCDATA), mixed content [(#PCDATA|a|b)*],
    deterministic and non-deterministic element content models with
    [,], [|], [?], [*], [+]; attribute types CDATA, ID, IDREF, IDREFS,
    NMTOKEN(S), ENTITY, ENTITIES, enumerations; defaults #REQUIRED,
    #IMPLIED, #FIXED "v", "v". Parameter entities and external subsets are
    out of scope. *)

type content_particle =
  | Elem of string
  | Seq of content_particle list
  | Choice of content_particle list
  | Opt of content_particle
  | Star of content_particle
  | Plus of content_particle

type content_model =
  | Empty
  | Any
  | Pcdata  (** [(#PCDATA)] *)
  | Mixed of string list  (** [(#PCDATA|a|b)*] *)
  | Children of content_particle

type attribute_type =
  | Cdata
  | Id
  | Idref
  | Idrefs
  | Nmtoken
  | Nmtokens
  | Entity
  | Entities
  | Enumeration of string list

type attribute_default =
  | Required
  | Implied
  | Fixed of string
  | Default of string

type attribute = {
  att_name : string;
  att_type : attribute_type;
  att_default : attribute_default;
}

type t

val parse : string -> (t, string) result
(** Parse an internal subset: a sequence of [<!ELEMENT>] and [<!ATTLIST>]
    declarations (comments and PIs skipped). *)

val parse_exn : string -> t
(** @raise Invalid_argument on a parse error. *)

val element_names : t -> string list
(** Declared elements, in declaration order. *)

val content_model : t -> string -> content_model option

val attributes : t -> string -> attribute list
(** Declared attributes of an element ([] when none). *)

val id_attributes : t -> string list
(** All attribute names declared with type ID anywhere, deduplicated — the
    [~id_attrs] input to {!Repro_graph.Data_graph.of_document}. *)

val idref_attributes : t -> string list
(** All attribute names declared IDREF or IDREFS anywhere — the
    [~idref_attrs] input. *)

val to_string : t -> string
(** Render as internal-subset declarations (parses back to an equal
    dtd). *)

val apply_defaults : t -> Xml_tree.document -> Xml_tree.document
(** Materialize declared attribute defaults: every element missing an
    attribute whose declaration carries a [Default] or [Fixed] value gets
    that value appended (what a validating parser hands the application). *)

(** {1 Validation} *)

type violation = {
  path : string;  (** slash-separated element path to the offender *)
  message : string;
}

val validate : t -> Xml_tree.document -> violation list
(** Check the document against the DTD: undeclared elements, child
    sequences not matching content models, character data where the model
    forbids it, undeclared/missing/mistyped attributes, duplicate IDs and
    dangling IDREFs. Empty list = valid. *)
