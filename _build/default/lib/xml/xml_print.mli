(** XML serialization.

    The output of {!to_string} parses back (via {!Xml_parser}) to a document
    equal to the input, provided text nodes contain no whitespace-only runs
    (the parser drops those as formatting). *)

val escape_text : string -> string
(** Escape [&], [<] and [>] for use in character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and both quote characters for use in a
    quoted attribute value. *)

val to_string : ?decl:bool -> ?dtd:string -> Xml_tree.document -> string
(** Serialize; [decl] (default true) controls emission of the
    [<?xml version="1.0"?>] header; [dtd] emits a
    [<!DOCTYPE root \[ ... \]>] carrying the given internal subset. No
    indentation is inserted so that character data round-trips exactly. *)

val to_channel : ?decl:bool -> ?dtd:string -> out_channel -> Xml_tree.document -> unit

val to_file : ?decl:bool -> ?dtd:string -> string -> Xml_tree.document -> unit
