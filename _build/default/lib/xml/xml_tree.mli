(** In-memory XML document trees.

    This is the parsed representation produced by {!Xml_parser} and consumed
    by {!Repro_graph.Data_graph.of_document}. Attribute order is preserved as
    it appears in the source document; children are in document order. *)

type element = {
  tag : string;  (** element name *)
  attrs : (string * string) list;  (** attributes in document order *)
  children : node list;  (** child nodes in document order *)
}

and node =
  | Element of element
  | Text of string  (** character data, entity references already resolved *)

type document = {
  decl : (string * string) list;
      (** pseudo-attributes of the [<?xml ...?>] declaration, if any *)
  root : element;
}

val element : ?attrs:(string * string) list -> ?children:node list -> string -> element
(** [element tag] builds an element; convenience constructor for tests and
    generators. *)

val attr : element -> string -> string option
(** [attr e name] is the value of attribute [name] on [e], if present. *)

val text_content : element -> string
(** [text_content e] concatenates all descendant text nodes of [e] in
    document order. *)

val count_nodes : document -> int
(** Number of element and text nodes in the document (the root included). *)

val equal_element : element -> element -> bool
(** Structural equality on elements. *)

val pp_element : Format.formatter -> element -> unit
(** Debug printer (compact, not a serializer; see {!Xml_print}). *)
