type t = {
  input : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

exception Error of string * int * int

let of_string input = { input; off = 0; line = 1; col = 1 }

let eof s = s.off >= String.length s.input
let pos s = (s.line, s.col)

let fail s msg = raise (Error (msg, s.line, s.col))

let peek s = if eof s then None else Some s.input.[s.off]

let peek2 s =
  if s.off + 1 >= String.length s.input then None else Some s.input.[s.off + 1]

let advance s =
  match peek s with
  | None -> ()
  | Some '\n' ->
    s.off <- s.off + 1;
    s.line <- s.line + 1;
    s.col <- 1
  | Some _ ->
    s.off <- s.off + 1;
    s.col <- s.col + 1

let expect_char s c =
  match peek s with
  | Some c' when Char.equal c c' -> advance s
  | Some c' -> fail s (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail s (Printf.sprintf "expected %C, found end of input" c)

let looking_at s prefix =
  let n = String.length prefix in
  s.off + n <= String.length s.input
  && String.equal (String.sub s.input s.off n) prefix

let expect_string s prefix =
  if looking_at s prefix then String.iter (fun _ -> advance s) prefix
  else fail s (Printf.sprintf "expected %S" prefix)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_whitespace s =
  let rec go () =
    match peek s with
    | Some c when is_space c ->
      advance s;
      go ()
    | Some _ | None -> ()
  in
  go ()

let skip_until s marker =
  let rec go () =
    if eof s then fail s (Printf.sprintf "unterminated construct: %S not found" marker)
    else if looking_at s marker then expect_string s marker
    else begin
      advance s;
      go ()
    end
  in
  go ()

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' | '-' | '.' -> true
  | _ -> false

let name s =
  match peek s with
  | Some c when is_name_start c ->
    let start = s.off in
    advance s;
    let rec go () =
      match peek s with
      | Some c when is_name_char c ->
        advance s;
        go ()
      | Some _ | None -> ()
    in
    go ();
    String.sub s.input start (s.off - start)
  | Some c -> fail s (Printf.sprintf "expected a name, found %C" c)
  | None -> fail s "expected a name, found end of input"

let decode_references raw =
  let buf = Buffer.create (String.length raw) in
  let n = String.length raw in
  let rec go i =
    if i >= n then ()
    else if Char.equal raw.[i] '&' then begin
      let stop =
        match String.index_from_opt raw i ';' with
        | Some j -> j
        | None -> invalid_arg "unterminated entity reference"
      in
      let entity = String.sub raw (i + 1) (stop - i - 1) in
      (match entity with
       | "amp" -> Buffer.add_char buf '&'
       | "lt" -> Buffer.add_char buf '<'
       | "gt" -> Buffer.add_char buf '>'
       | "apos" -> Buffer.add_char buf '\''
       | "quot" -> Buffer.add_char buf '"'
       | _ ->
         let code =
           if String.length entity > 2 && entity.[0] = '#' && (entity.[1] = 'x' || entity.[1] = 'X')
           then int_of_string_opt ("0x" ^ String.sub entity 2 (String.length entity - 2))
           else if String.length entity > 1 && entity.[0] = '#'
           then int_of_string_opt (String.sub entity 1 (String.length entity - 1))
           else None
         in
         match code with
         | Some c when c >= 0 && c < 0x80 -> Buffer.add_char buf (Char.chr c)
         | Some c when c < 0x110000 ->
           (* encode as UTF-8 *)
           if c < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
           end
           else if c < 0x10000 then begin
             Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xF0 lor (c lsr 18)));
             Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
           end
         | _ -> invalid_arg (Printf.sprintf "unknown entity reference: &%s;" entity));
      go (stop + 1)
    end
    else begin
      Buffer.add_char buf raw.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let quoted s ~decode =
  let quote =
    match peek s with
    | Some (('"' | '\'') as q) ->
      advance s;
      q
    | Some c -> fail s (Printf.sprintf "expected a quoted literal, found %C" c)
    | None -> fail s "expected a quoted literal, found end of input"
  in
  let start = s.off in
  let rec go () =
    match peek s with
    | Some c when Char.equal c quote ->
      let raw = String.sub s.input start (s.off - start) in
      advance s;
      raw
    | Some _ ->
      advance s;
      go ()
    | None -> fail s "unterminated quoted literal"
  in
  let raw = go () in
  try decode raw with Invalid_argument msg -> fail s msg

let text_run s =
  let start = s.off in
  let rec go () =
    match peek s with
    | Some '<' | None -> String.sub s.input start (s.off - start)
    | Some _ ->
      advance s;
      go ()
  in
  go ()
