(** Recursive-descent parser for a practical XML 1.0 subset.

    Supported: the XML declaration, elements with attributes, character
    data, CDATA sections, comments, processing instructions (skipped), a
    DOCTYPE declaration (skipped, including an internal subset), predefined
    entity and character references.

    Not supported (not needed by the APEX reproduction): external DTDs,
    custom entity definitions, namespace semantics (names may contain [:]
    but are treated opaquely). *)

exception Parse_error of string
(** Raised with a message of the form ["line:col: description"]. *)

val parse_string : string -> Xml_tree.document
(** Parse a complete document from a string. @raise Parse_error *)

val parse_string_full : string -> Xml_tree.document * string option
(** Like {!parse_string}, additionally returning the raw internal DTD
    subset (the text between [\[] and [\]] of the DOCTYPE declaration)
    when present — feed it to {!Dtd.parse}. *)

val parse_file : string -> Xml_tree.document
(** Parse a complete document from a file. @raise Parse_error and
    [Sys_error] on I/O failure. *)
