type content_particle =
  | Elem of string
  | Seq of content_particle list
  | Choice of content_particle list
  | Opt of content_particle
  | Star of content_particle
  | Plus of content_particle

type content_model =
  | Empty
  | Any
  | Pcdata
  | Mixed of string list
  | Children of content_particle

type attribute_type =
  | Cdata
  | Id
  | Idref
  | Idrefs
  | Nmtoken
  | Nmtokens
  | Entity
  | Entities
  | Enumeration of string list

type attribute_default =
  | Required
  | Implied
  | Fixed of string
  | Default of string

type attribute = {
  att_name : string;
  att_type : attribute_type;
  att_default : attribute_default;
}

type t = {
  order : string list;  (* element declaration order, reversed *)
  elements : (string, content_model) Hashtbl.t;
  attlists : (string, attribute list) Hashtbl.t;
}

(* --- parsing --- *)

exception Fail of string

let fail lexer fmt =
  let line, col = Xml_lexer.pos lexer in
  Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "%d:%d: %s" line col m))) fmt

let rec skip_misc lexer =
  Xml_lexer.skip_whitespace lexer;
  if Xml_lexer.looking_at lexer "<!--" then begin
    Xml_lexer.expect_string lexer "<!--";
    Xml_lexer.skip_until lexer "-->";
    skip_misc lexer
  end
  else if Xml_lexer.looking_at lexer "<?" then begin
    Xml_lexer.expect_string lexer "<?";
    Xml_lexer.skip_until lexer "?>";
    skip_misc lexer
  end

let rec parse_cp lexer =
  Xml_lexer.skip_whitespace lexer;
  let base =
    if Xml_lexer.looking_at lexer "(" then begin
      Xml_lexer.expect_char lexer '(';
      let inner = parse_group lexer in
      Xml_lexer.skip_whitespace lexer;
      Xml_lexer.expect_char lexer ')';
      inner
    end
    else Elem (Xml_lexer.name lexer)
  in
  match Xml_lexer.peek lexer with
  | Some '?' ->
    Xml_lexer.advance lexer;
    Opt base
  | Some '*' ->
    Xml_lexer.advance lexer;
    Star base
  | Some '+' ->
    Xml_lexer.advance lexer;
    Plus base
  | Some _ | None -> base

and parse_group lexer =
  let first = parse_cp lexer in
  Xml_lexer.skip_whitespace lexer;
  match Xml_lexer.peek lexer with
  | Some ',' ->
    let rec more acc =
      Xml_lexer.skip_whitespace lexer;
      if Xml_lexer.looking_at lexer "," then begin
        Xml_lexer.expect_char lexer ',';
        more (parse_cp lexer :: acc)
      end
      else Seq (List.rev acc)
    in
    more [ first ]
  | Some '|' ->
    let rec more acc =
      Xml_lexer.skip_whitespace lexer;
      if Xml_lexer.looking_at lexer "|" then begin
        Xml_lexer.expect_char lexer '|';
        more (parse_cp lexer :: acc)
      end
      else Choice (List.rev acc)
    in
    more [ first ]
  | Some _ | None -> first

let parse_content_model lexer =
  Xml_lexer.skip_whitespace lexer;
  if Xml_lexer.looking_at lexer "EMPTY" then begin
    Xml_lexer.expect_string lexer "EMPTY";
    Empty
  end
  else if Xml_lexer.looking_at lexer "ANY" then begin
    Xml_lexer.expect_string lexer "ANY";
    Any
  end
  else if Xml_lexer.looking_at lexer "(" then begin
    Xml_lexer.expect_char lexer '(';
    Xml_lexer.skip_whitespace lexer;
    if Xml_lexer.looking_at lexer "#PCDATA" then begin
      Xml_lexer.expect_string lexer "#PCDATA";
      let rec names acc =
        Xml_lexer.skip_whitespace lexer;
        if Xml_lexer.looking_at lexer "|" then begin
          Xml_lexer.expect_char lexer '|';
          Xml_lexer.skip_whitespace lexer;
          names (Xml_lexer.name lexer :: acc)
        end
        else List.rev acc
      in
      let mixed = names [] in
      Xml_lexer.skip_whitespace lexer;
      Xml_lexer.expect_char lexer ')';
      if Xml_lexer.looking_at lexer "*" then Xml_lexer.expect_char lexer '*'
      else if mixed <> [] then fail lexer "mixed content must end with )*";
      if mixed = [] then Pcdata else Mixed mixed
    end
    else begin
      let inner = parse_group lexer in
      Xml_lexer.skip_whitespace lexer;
      Xml_lexer.expect_char lexer ')';
      let particle =
        match Xml_lexer.peek lexer with
        | Some '?' ->
          Xml_lexer.advance lexer;
          Opt inner
        | Some '*' ->
          Xml_lexer.advance lexer;
          Star inner
        | Some '+' ->
          Xml_lexer.advance lexer;
          Plus inner
        | Some _ | None -> inner
      in
      Children particle
    end
  end
  else fail lexer "expected EMPTY, ANY or a content model"

let parse_attribute_type lexer =
  let keyword k v =
    if Xml_lexer.looking_at lexer k then begin
      Xml_lexer.expect_string lexer k;
      Some v
    end
    else None
  in
  (* note: longer keywords first (IDREFS before IDREF before ID) *)
  match
    List.find_map
      (fun (k, v) -> keyword k v)
      [ ("CDATA", Cdata); ("IDREFS", Idrefs); ("IDREF", Idref); ("ID", Id);
        ("NMTOKENS", Nmtokens); ("NMTOKEN", Nmtoken); ("ENTITIES", Entities); ("ENTITY", Entity)
      ]
  with
  | Some t -> t
  | None ->
    if Xml_lexer.looking_at lexer "(" then begin
      Xml_lexer.expect_char lexer '(';
      let rec values acc =
        Xml_lexer.skip_whitespace lexer;
        let v = Xml_lexer.name lexer in
        Xml_lexer.skip_whitespace lexer;
        if Xml_lexer.looking_at lexer "|" then begin
          Xml_lexer.expect_char lexer '|';
          values (v :: acc)
        end
        else begin
          Xml_lexer.expect_char lexer ')';
          List.rev (v :: acc)
        end
      in
      Enumeration (values [])
    end
    else fail lexer "expected an attribute type"

let parse_attribute_default lexer =
  Xml_lexer.skip_whitespace lexer;
  if Xml_lexer.looking_at lexer "#REQUIRED" then begin
    Xml_lexer.expect_string lexer "#REQUIRED";
    Required
  end
  else if Xml_lexer.looking_at lexer "#IMPLIED" then begin
    Xml_lexer.expect_string lexer "#IMPLIED";
    Implied
  end
  else if Xml_lexer.looking_at lexer "#FIXED" then begin
    Xml_lexer.expect_string lexer "#FIXED";
    Xml_lexer.skip_whitespace lexer;
    Fixed (Xml_lexer.quoted lexer ~decode:Xml_lexer.decode_references)
  end
  else Default (Xml_lexer.quoted lexer ~decode:Xml_lexer.decode_references)

let parse input =
  let lexer = Xml_lexer.of_string input in
  let t = { order = []; elements = Hashtbl.create 16; attlists = Hashtbl.create 16 } in
  let order = ref [] in
  try
    let rec loop () =
      skip_misc lexer;
      if Xml_lexer.eof lexer then ()
      else if Xml_lexer.looking_at lexer "<!ELEMENT" then begin
        Xml_lexer.expect_string lexer "<!ELEMENT";
        Xml_lexer.skip_whitespace lexer;
        let name = Xml_lexer.name lexer in
        let model = parse_content_model lexer in
        Xml_lexer.skip_whitespace lexer;
        Xml_lexer.expect_char lexer '>';
        if Hashtbl.mem t.elements name then fail lexer "duplicate element declaration %s" name;
        Hashtbl.add t.elements name model;
        order := name :: !order;
        loop ()
      end
      else if Xml_lexer.looking_at lexer "<!ATTLIST" then begin
        Xml_lexer.expect_string lexer "<!ATTLIST";
        Xml_lexer.skip_whitespace lexer;
        let elem = Xml_lexer.name lexer in
        let rec atts acc =
          Xml_lexer.skip_whitespace lexer;
          if Xml_lexer.looking_at lexer ">" then begin
            Xml_lexer.expect_char lexer '>';
            List.rev acc
          end
          else begin
            let att_name = Xml_lexer.name lexer in
            Xml_lexer.skip_whitespace lexer;
            let att_type = parse_attribute_type lexer in
            let att_default = parse_attribute_default lexer in
            atts ({ att_name; att_type; att_default } :: acc)
          end
        in
        let new_atts = atts [] in
        let existing = Option.value ~default:[] (Hashtbl.find_opt t.attlists elem) in
        Hashtbl.replace t.attlists elem (existing @ new_atts);
        loop ()
      end
      else fail lexer "expected <!ELEMENT or <!ATTLIST"
    in
    loop ();
    Ok { t with order = List.rev !order }
  with
  | Fail m -> Error m
  | Xml_lexer.Error (m, line, col) -> Error (Printf.sprintf "%d:%d: %s" line col m)

let parse_exn input =
  match parse input with
  | Ok t -> t
  | Error m -> invalid_arg (Printf.sprintf "Dtd.parse_exn: %s" m)

(* --- accessors --- *)

let element_names t = t.order
let content_model t name = Hashtbl.find_opt t.elements name
let attributes t name = Option.value ~default:[] (Hashtbl.find_opt t.attlists name)

let attribute_names_with t p =
  Hashtbl.fold
    (fun _ atts acc ->
      List.fold_left (fun acc a -> if p a.att_type then a.att_name :: acc else acc) acc atts)
    t.attlists []
  |> List.sort_uniq compare

let id_attributes t = attribute_names_with t (function Id -> true | _ -> false)

let idref_attributes t =
  attribute_names_with t (function Idref | Idrefs -> true | _ -> false)

(* --- rendering --- *)

let rec particle_to_string = function
  | Elem n -> n
  | Seq ps -> "(" ^ String.concat "," (List.map particle_to_string ps) ^ ")"
  | Choice ps -> "(" ^ String.concat "|" (List.map particle_to_string ps) ^ ")"
  | Opt p -> particle_to_string p ^ "?"
  | Star p -> particle_to_string p ^ "*"
  | Plus p -> particle_to_string p ^ "+"

let model_to_string = function
  | Empty -> "EMPTY"
  | Any -> "ANY"
  | Pcdata -> "(#PCDATA)"
  | Mixed names -> "(#PCDATA|" ^ String.concat "|" names ^ ")*"
  | Children (Seq _ as p) | Children (Choice _ as p) -> particle_to_string p
  | Children p -> "(" ^ particle_to_string p ^ ")"

let type_to_string = function
  | Cdata -> "CDATA"
  | Id -> "ID"
  | Idref -> "IDREF"
  | Idrefs -> "IDREFS"
  | Nmtoken -> "NMTOKEN"
  | Nmtokens -> "NMTOKENS"
  | Entity -> "ENTITY"
  | Entities -> "ENTITIES"
  | Enumeration vs -> "(" ^ String.concat "|" vs ^ ")"

let default_to_string = function
  | Required -> "#REQUIRED"
  | Implied -> "#IMPLIED"
  | Fixed v -> Printf.sprintf "#FIXED \"%s\"" v
  | Default v -> Printf.sprintf "\"%s\"" v

let to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      (match Hashtbl.find_opt t.elements name with
       | Some model ->
         Buffer.add_string buf (Printf.sprintf "<!ELEMENT %s %s>\n" name (model_to_string model))
       | None -> ());
      match attributes t name with
      | [] -> ()
      | atts ->
        Buffer.add_string buf (Printf.sprintf "<!ATTLIST %s" name);
        List.iter
          (fun a ->
            Buffer.add_string buf
              (Printf.sprintf "\n  %s %s %s" a.att_name (type_to_string a.att_type)
                 (default_to_string a.att_default)))
          atts;
        Buffer.add_string buf ">\n")
    t.order;
  (* attlists for undeclared elements, if any *)
  Hashtbl.iter
    (fun elem atts ->
      if not (Hashtbl.mem t.elements elem) then begin
        Buffer.add_string buf (Printf.sprintf "<!ATTLIST %s" elem);
        List.iter
          (fun a ->
            Buffer.add_string buf
              (Printf.sprintf "\n  %s %s %s" a.att_name (type_to_string a.att_type)
                 (default_to_string a.att_default)))
          atts;
        Buffer.add_string buf ">\n"
      end)
    t.attlists;
  Buffer.contents buf

let apply_defaults t (doc : Xml_tree.document) =
  let rec fix (e : Xml_tree.element) =
    let declared = attributes t e.tag in
    let missing =
      List.filter_map
        (fun a ->
          if List.mem_assoc a.att_name e.attrs then None
          else
            match a.att_default with
            | Default v | Fixed v -> Some (a.att_name, v)
            | Required | Implied -> None)
        declared
    in
    { e with
      attrs = e.attrs @ missing;
      children =
        List.map
          (function
            | Xml_tree.Element c -> Xml_tree.Element (fix c)
            | Xml_tree.Text _ as t -> t)
          e.children
    }
  in
  { doc with root = fix doc.root }

(* --- validation --- *)

(* Thompson construction over child-element names *)
module Nfa = struct
  type state = {
    mutable eps : int list;
    mutable trans : (string * int) list;
  }

  type t = {
    states : state Repro_util.Vec.t;
    start : int;
    accept : int;
  }

  let add_state states =
    let id = Repro_util.Vec.length states in
    Repro_util.Vec.push states { eps = []; trans = [] };
    id

  let build particle =
    let states = Repro_util.Vec.create () in
    let rec go p =
      match p with
      | Elem name ->
        let s = add_state states and a = add_state states in
        (Repro_util.Vec.get states s).trans <- [ (name, a) ];
        (s, a)
      | Seq ps ->
        List.fold_left
          (fun (s, a) p ->
            let s', a' = go p in
            (Repro_util.Vec.get states a).eps <- s' :: (Repro_util.Vec.get states a).eps;
            (s, a'))
          (let s = add_state states in
           (s, s))
          ps
      | Choice ps ->
        let s = add_state states and a = add_state states in
        List.iter
          (fun p ->
            let s', a' = go p in
            (Repro_util.Vec.get states s).eps <- s' :: (Repro_util.Vec.get states s).eps;
            (Repro_util.Vec.get states a').eps <- a :: (Repro_util.Vec.get states a').eps)
          ps;
        (s, a)
      | Opt p ->
        let s', a' = go p in
        (Repro_util.Vec.get states s').eps <- a' :: (Repro_util.Vec.get states s').eps;
        (s', a')
      | Star p ->
        let s = add_state states in
        let s', a' = go p in
        (Repro_util.Vec.get states s).eps <- s' :: (Repro_util.Vec.get states s).eps;
        (Repro_util.Vec.get states a').eps <- s :: (Repro_util.Vec.get states a').eps;
        (s, s)
      | Plus p ->
        let s', a' = go p in
        (Repro_util.Vec.get states a').eps <- s' :: (Repro_util.Vec.get states a').eps;
        (s', a')
    in
    let start, accept = go particle in
    { states; start; accept }

  let closure t set =
    let seen = Hashtbl.create 16 in
    let rec go id =
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        List.iter go (Repro_util.Vec.get t.states id).eps
      end
    in
    List.iter go set;
    Hashtbl.fold (fun id () acc -> id :: acc) seen []

  let matches t names =
    let step set name =
      List.concat_map
        (fun id ->
          List.filter_map
            (fun (n, target) -> if String.equal n name then Some target else None)
            (Repro_util.Vec.get t.states id).trans)
        set
    in
    let final = List.fold_left (fun set name -> closure t (step set name)) (closure t [ t.start ]) names in
    List.mem t.accept final
end

type violation = {
  path : string;
  message : string;
}

let is_nmtoken s =
  String.length s > 0
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' | ':' -> true | _ -> false)
       s

let split_tokens v =
  String.split_on_char ' ' v |> List.filter (fun s -> String.length s > 0)

let validate t (doc : Xml_tree.document) =
  let violations = ref [] in
  let report path fmt = Printf.ksprintf (fun m -> violations := { path; message = m } :: !violations) fmt in
  let automata : (string, Nfa.t) Hashtbl.t = Hashtbl.create 16 in
  let automaton name particle =
    match Hashtbl.find_opt automata name with
    | Some a -> a
    | None ->
      let a = Nfa.build particle in
      Hashtbl.add automata name a;
      a
  in
  let seen_ids : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let pending_refs : (string * string) list ref = ref [] in
  let rec walk path (e : Xml_tree.element) =
    let path = path ^ "/" ^ e.tag in
    let child_elems =
      List.filter_map (function Xml_tree.Element c -> Some c | Xml_tree.Text _ -> None) e.children
    in
    let has_text =
      List.exists
        (function
          | Xml_tree.Text s -> not (String.for_all (function ' ' | '\t' | '\n' | '\r' -> true | _ -> false) s)
          | Xml_tree.Element _ -> false)
        e.children
    in
    (match Hashtbl.find_opt t.elements e.tag with
     | None -> report path "element %s is not declared" e.tag
     | Some Empty ->
       if e.children <> [] then report path "element %s is declared EMPTY" e.tag
     | Some Any ->
       List.iter
         (fun (c : Xml_tree.element) ->
           if not (Hashtbl.mem t.elements c.tag) then
             report path "child %s of ANY element is not declared" c.tag)
         child_elems
     | Some Pcdata ->
       if child_elems <> [] then report path "element %s allows only character data" e.tag
     | Some (Mixed allowed) ->
       List.iter
         (fun (c : Xml_tree.element) ->
           if not (List.mem c.tag allowed) then
             report path "child %s not allowed in mixed content of %s" c.tag e.tag)
         child_elems
     | Some (Children particle) ->
       if has_text then report path "element %s does not allow character data" e.tag;
       let names = List.map (fun (c : Xml_tree.element) -> c.tag) child_elems in
       if not (Nfa.matches (automaton e.tag particle) names) then
         report path "children (%s) do not match the content model of %s"
           (String.concat "," names) e.tag);
    (* attributes *)
    let declared = attributes t e.tag in
    List.iter
      (fun (name, value) ->
        match List.find_opt (fun a -> String.equal a.att_name name) declared with
        | None -> report path "attribute %s of %s is not declared" name e.tag
        | Some a ->
          (match a.att_type with
           | Id ->
             if Hashtbl.mem seen_ids value then report path "duplicate ID %s" value
             else Hashtbl.add seen_ids value path
           | Idref -> pending_refs := (path, value) :: !pending_refs
           | Idrefs ->
             List.iter (fun v -> pending_refs := (path, v) :: !pending_refs) (split_tokens value)
           | Nmtoken | Entity ->
             if not (is_nmtoken value) then report path "attribute %s: %S is not a token" name value
           | Nmtokens | Entities ->
             if not (List.for_all is_nmtoken (split_tokens value)) then
               report path "attribute %s: %S is not a token list" name value
           | Enumeration allowed ->
             if not (List.mem value allowed) then
               report path "attribute %s: %S not in (%s)" name value (String.concat "|" allowed)
           | Cdata -> ());
          (match a.att_default with
           | Fixed fixed when not (String.equal fixed value) ->
             report path "attribute %s must be fixed to %S" name fixed
           | Fixed _ | Required | Implied | Default _ -> ()))
      e.attrs;
    List.iter
      (fun a ->
        match a.att_default with
        | Required when not (List.mem_assoc a.att_name e.attrs) ->
          report path "required attribute %s of %s is missing" a.att_name e.tag
        | Required | Implied | Fixed _ | Default _ -> ())
      declared;
    List.iter (walk path) child_elems
  in
  walk "" doc.root;
  List.iter
    (fun (path, r) ->
      if not (Hashtbl.mem seen_ids r) then report path "IDREF %s resolves to no ID" r)
    !pending_refs;
  List.rev !violations
