let escape ~quotes s =
  let needs_escape = function
    | '&' | '<' | '>' -> true
    | '"' | '\'' -> quotes
    | _ -> false
  in
  if String.exists needs_escape s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string buf "&amp;"
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '"' when quotes -> Buffer.add_string buf "&quot;"
        | '\'' when quotes -> Buffer.add_string buf "&apos;"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let escape_text = escape ~quotes:false
let escape_attr = escape ~quotes:true

let add_document buf ~decl ?dtd doc =
  if decl then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  (match dtd with
   | Some subset ->
     Buffer.add_string buf
       (Printf.sprintf "<!DOCTYPE %s [\n%s]>\n" doc.Xml_tree.root.Xml_tree.tag subset)
   | None -> ());
  let rec add_element (e : Xml_tree.element) =
    Buffer.add_char buf '<';
    Buffer.add_string buf e.tag;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_attr v);
        Buffer.add_char buf '"')
      e.attrs;
    match e.children with
    | [] -> Buffer.add_string buf "/>"
    | children ->
      Buffer.add_char buf '>';
      List.iter add_node children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_char buf '>'
  and add_node = function
    | Xml_tree.Text s -> Buffer.add_string buf (escape_text s)
    | Xml_tree.Element e -> add_element e
  in
  add_element doc.Xml_tree.root

let to_string ?(decl = true) ?dtd doc =
  let buf = Buffer.create 4096 in
  add_document buf ~decl ?dtd doc;
  Buffer.contents buf

let to_channel ?(decl = true) ?dtd oc doc =
  let buf = Buffer.create 4096 in
  add_document buf ~decl ?dtd doc;
  Buffer.output_buffer oc buf

let to_file ?decl ?dtd path doc =
  let oc = open_out_bin path in
  (try to_channel ?decl ?dtd oc doc
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
