lib/xml/xml_print.ml: Buffer List Printf String Xml_tree
