lib/xml/xml_parser.ml: Buffer List Printf String Xml_lexer Xml_tree
