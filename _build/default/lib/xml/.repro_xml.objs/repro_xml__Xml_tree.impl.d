lib/xml/xml_tree.ml: Buffer Format List String
