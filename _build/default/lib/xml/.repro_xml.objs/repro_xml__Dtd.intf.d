lib/xml/dtd.mli: Xml_tree
