lib/xml/dtd.ml: Buffer Hashtbl List Option Printf Repro_util String Xml_lexer Xml_tree
