type element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

and node =
  | Element of element
  | Text of string

type document = {
  decl : (string * string) list;
  root : element;
}

let element ?(attrs = []) ?(children = []) tag = { tag; attrs; children }

let attr e name = List.assoc_opt name e.attrs

let text_content e =
  let buf = Buffer.create 64 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element e -> List.iter go e.children
  in
  List.iter go e.children;
  Buffer.contents buf

let count_nodes doc =
  let rec go acc = function
    | Text _ -> acc + 1
    | Element e -> List.fold_left go (acc + 1) e.children
  in
  go 0 (Element doc.root)

let rec equal_element a b =
  String.equal a.tag b.tag
  && List.length a.attrs = List.length b.attrs
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
       a.attrs b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2 equal_node a.children b.children

and equal_node a b =
  match a, b with
  | Text s1, Text s2 -> String.equal s1 s2
  | Element e1, Element e2 -> equal_element e1 e2
  | Text _, Element _ | Element _, Text _ -> false

let rec pp_element ppf e =
  Format.fprintf ppf "@[<hv 2><%s%a>%a</%s>@]" e.tag pp_attrs e.attrs
    (Format.pp_print_list pp_node) e.children e.tag

and pp_attrs ppf attrs =
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%S" k v) attrs

and pp_node ppf = function
  | Text s -> Format.pp_print_string ppf s
  | Element e -> pp_element ppf e
