exception Parse_error of string

let parse_error lexer fmt =
  let line, col = Xml_lexer.pos lexer in
  Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "%d:%d: %s" line col msg))) fmt

(* Whitespace-only text nodes between elements are markup formatting, not
   data; keep a text node only if it has a non-space character. *)
let is_ignorable s = String.for_all (function ' ' | '\t' | '\n' | '\r' -> true | _ -> false) s

let rec skip_misc lexer =
  Xml_lexer.skip_whitespace lexer;
  if Xml_lexer.looking_at lexer "<!--" then begin
    Xml_lexer.expect_string lexer "<!--";
    Xml_lexer.skip_until lexer "-->";
    skip_misc lexer
  end
  else if Xml_lexer.looking_at lexer "<?" then begin
    Xml_lexer.expect_string lexer "<?";
    Xml_lexer.skip_until lexer "?>";
    skip_misc lexer
  end

(* DOCTYPE with an optional internal subset: skip to the matching '>',
   capturing the '[' ... ']' block. *)
let skip_doctype lexer =
  Xml_lexer.expect_string lexer "<!DOCTYPE";
  let subset = Buffer.create 64 in
  let rec go () =
    match Xml_lexer.peek lexer with
    | None -> parse_error lexer "unterminated DOCTYPE"
    | Some '[' ->
      Xml_lexer.advance lexer;
      let rec capture () =
        match Xml_lexer.peek lexer with
        | None -> parse_error lexer "unterminated DOCTYPE internal subset"
        | Some ']' -> Xml_lexer.advance lexer
        | Some c ->
          Buffer.add_char subset c;
          Xml_lexer.advance lexer;
          capture ()
      in
      capture ();
      go ()
    | Some '>' -> Xml_lexer.advance lexer
    | Some _ ->
      Xml_lexer.advance lexer;
      go ()
  in
  go ();
  if Buffer.length subset = 0 then None else Some (Buffer.contents subset)

let parse_attrs lexer =
  let rec go acc =
    Xml_lexer.skip_whitespace lexer;
    match Xml_lexer.peek lexer with
    | Some ('>' | '/' | '?') | None -> List.rev acc
    | Some _ ->
      let name = Xml_lexer.name lexer in
      Xml_lexer.skip_whitespace lexer;
      Xml_lexer.expect_char lexer '=';
      Xml_lexer.skip_whitespace lexer;
      let value = Xml_lexer.quoted lexer ~decode:Xml_lexer.decode_references in
      go ((name, value) :: acc)
  in
  go []

let rec parse_element lexer =
  Xml_lexer.expect_char lexer '<';
  let tag = Xml_lexer.name lexer in
  let attrs = parse_attrs lexer in
  match Xml_lexer.peek lexer with
  | Some '/' ->
    Xml_lexer.expect_string lexer "/>";
    { Xml_tree.tag; attrs; children = [] }
  | Some '>' ->
    Xml_lexer.advance lexer;
    let children = parse_content lexer in
    Xml_lexer.expect_string lexer "</";
    let close = Xml_lexer.name lexer in
    if not (String.equal close tag) then
      parse_error lexer "mismatched closing tag: expected </%s>, found </%s>" tag close;
    Xml_lexer.skip_whitespace lexer;
    Xml_lexer.expect_char lexer '>';
    { Xml_tree.tag; attrs; children }
  | Some c -> parse_error lexer "malformed start tag <%s: unexpected %C" tag c
  | None -> parse_error lexer "unterminated start tag <%s" tag

and parse_content lexer =
  let rec go acc =
    if Xml_lexer.looking_at lexer "</" then List.rev acc
    else if Xml_lexer.looking_at lexer "<!--" then begin
      Xml_lexer.expect_string lexer "<!--";
      Xml_lexer.skip_until lexer "-->";
      go acc
    end
    else if Xml_lexer.looking_at lexer "<![CDATA[" then begin
      Xml_lexer.expect_string lexer "<![CDATA[";
      let buf = Buffer.create 32 in
      let rec cdata () =
        if Xml_lexer.looking_at lexer "]]>" then Xml_lexer.expect_string lexer "]]>"
        else
          match Xml_lexer.peek lexer with
          | None -> parse_error lexer "unterminated CDATA section"
          | Some c ->
            Buffer.add_char buf c;
            Xml_lexer.advance lexer;
            cdata ()
      in
      cdata ();
      go (Xml_tree.Text (Buffer.contents buf) :: acc)
    end
    else if Xml_lexer.looking_at lexer "<?" then begin
      Xml_lexer.expect_string lexer "<?";
      Xml_lexer.skip_until lexer "?>";
      go acc
    end
    else if Xml_lexer.looking_at lexer "<" then go (Xml_tree.Element (parse_element lexer) :: acc)
    else
      match Xml_lexer.peek lexer with
      | None -> parse_error lexer "unexpected end of input inside element content"
      | Some _ ->
        let raw = Xml_lexer.text_run lexer in
        let text =
          try Xml_lexer.decode_references raw
          with Invalid_argument msg -> parse_error lexer "%s" msg
        in
        if is_ignorable text then go acc else go (Xml_tree.Text text :: acc)
  in
  go []

let parse_decl lexer =
  if Xml_lexer.looking_at lexer "<?xml" then begin
    Xml_lexer.expect_string lexer "<?xml";
    let attrs = parse_attrs lexer in
    Xml_lexer.skip_whitespace lexer;
    Xml_lexer.expect_string lexer "?>";
    attrs
  end
  else []

let parse_string_full input =
  let lexer = Xml_lexer.of_string input in
  try
    let decl = parse_decl lexer in
    skip_misc lexer;
    let subset =
      if Xml_lexer.looking_at lexer "<!DOCTYPE" then skip_doctype lexer else None
    in
    skip_misc lexer;
    if not (Xml_lexer.looking_at lexer "<") then parse_error lexer "expected root element";
    let root = parse_element lexer in
    skip_misc lexer;
    if not (Xml_lexer.eof lexer) then parse_error lexer "trailing content after root element";
    ({ Xml_tree.decl; root }, subset)
  with Xml_lexer.Error (msg, line, col) ->
    raise (Parse_error (Printf.sprintf "%d:%d: %s" line col msg))

let parse_string input = fst (parse_string_full input)

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents =
    try really_input_string ic len
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  parse_string contents
