(** Low-level character scanner shared by the XML parser.

    A cursor over an input string with line/column tracking, lookahead, and
    the lexical productions of XML that do not need grammar context: names,
    whitespace, quoted literals and entity/character references. *)

type t

exception Error of string * int * int
(** [Error (message, line, column)] — lexical error at a source position. *)

val of_string : string -> t
(** Scanner positioned at the start of the input. *)

val eof : t -> bool
val pos : t -> int * int
(** Current [(line, column)], 1-based. *)

val peek : t -> char option
val peek2 : t -> char option
(** Character after the current one, if any. *)

val advance : t -> unit
val expect_char : t -> char -> unit
val expect_string : t -> string -> unit
(** Fail with {!Error} unless the input at the cursor is the given
    char/string; consumes it. *)

val looking_at : t -> string -> bool
(** True when the input at the cursor starts with the given string; does not
    consume. *)

val skip_whitespace : t -> unit
val skip_until : t -> string -> unit
(** Consume input up to and including the next occurrence of the marker
    string; {!Error} if the marker never occurs. *)

val name : t -> string
(** An XML Name ([a-zA-Z_:] then name characters); {!Error} on anything
    else. *)

val quoted : t -> decode:(string -> string) -> string
(** A single- or double-quoted literal, with [decode] applied to the raw
    contents (normally {!decode_references}). *)

val text_run : t -> string
(** Raw character data up to the next ['<'] or end of input. References are
    not decoded. *)

val decode_references : string -> string
(** Resolve the five predefined entities and decimal/hex character
    references. Raises [Invalid_argument] on a malformed or unknown
    reference. *)

val fail : t -> string -> 'a
(** Raise {!Error} at the current position. *)
