(** XML path queries — the three query classes of the paper's evaluation.

    - QTYPE1: [//l_i/l_{i+1}/.../l_n], possibly with dereference steps
      ([l => m], which in the graph encoding of Section 3 is simply the
      label [@l] followed by [m]);
    - QTYPE2: [//l_i//l_j], a partial-matching pair needing query
      pruning/rewriting on the index;
    - QTYPE3: [//l_i/.../l_n\[text()=value\]], a QTYPE1 path with a value
      predicate checked against the data table.

    Queries are built over label {e strings} so they can be parsed and
    printed independently of a data graph; {!compile} resolves them against
    a graph's label table (a query naming an unknown label matches
    nothing). *)

type t =
  | Qtype1 of string list
  | Qtype2 of string * string
  | Qtype3 of string list * string

type compiled =
  | C1 of Label_path.t
  | C2 of Repro_graph.Label.t * Repro_graph.Label.t
  | C3 of Label_path.t * string

val parse : string -> (t, string) result
(** Parse the XQuery-style concrete syntax used in Section 6.1:
    [//a/b/c], [//a/@m=>c/d], [//a//b], [//a/b\[text()="v"\]] (quotes
    around the value optional). *)

val to_string : t -> string
(** Inverse of {!parse}; attribute-step/label pairs print with [=>]. *)

val compile : Repro_graph.Label.table -> t -> compiled option
(** [None] when a label of the query does not occur in the data at all. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
