module G = Repro_graph.Data_graph
module Edge_set = Repro_graph.Edge_set
module Label = Repro_graph.Label

let eval_q1 g path = Edge_set.endpoints (G.reachable_by_label_path g path)

let eval_q2 g la lb =
  let n = G.n_nodes g in
  let labels = G.labels g in
  (* seeds: endpoints of a-labeled edges *)
  let in_closure = Array.make n false in
  let queue = Queue.create () in
  Array.iter
    (fun v ->
      if not in_closure.(v) then begin
        in_closure.(v) <- true;
        Queue.add v queue
      end)
    (Edge_set.endpoints (G.edges_with_label g la));
  (* forward closure avoiding reference relationships *)
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    G.iter_out g u (fun l v ->
        if (not (Label.is_attribute labels l)) && not in_closure.(v) then begin
          in_closure.(v) <- true;
          Queue.add v queue
        end)
  done;
  let result =
    Edge_set.fold
      (fun acc u v -> if u <> Edge_set.null && in_closure.(u) then v :: acc else acc)
      []
      (G.edges_with_label g lb)
  in
  Repro_util.Int_sorted.of_unsorted (Array.of_list result)

let eval g = function
  | Query.C1 path -> eval_q1 g path
  | Query.C2 (la, lb) -> eval_q2 g la lb
  | Query.C3 (path, value) ->
    Array.of_seq
      (Seq.filter
         (fun nid -> match G.value g nid with Some v' -> String.equal value v' | None -> false)
         (Array.to_seq (eval_q1 g path)))

let eval_query g q =
  match Query.compile (G.labels g) q with
  | Some c -> eval g c
  | None -> [||]
