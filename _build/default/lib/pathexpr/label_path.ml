type t = Repro_graph.Label.t list

let equal = List.equal Int.equal
let compare = List.compare Int.compare
let length = List.length

let is_suffix ~suffix p =
  let ls = List.length suffix and lp = List.length p in
  ls <= lp
  &&
  let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
  equal suffix (drop (lp - ls) p)

let rec is_prefix ~prefix p =
  match prefix, p with
  | [], _ -> true
  | _, [] -> false
  | a :: ta, b :: tb -> Int.equal a b && is_prefix ~prefix:ta tb

let rec is_subpath ~sub p =
  match p with
  | [] -> sub = []
  | _ :: tl -> is_prefix ~prefix:sub p || is_subpath ~sub tl

let rec suffixes = function
  | [] -> []
  | _ :: tl as p -> p :: suffixes tl

let prefixes p =
  let rec go acc rev = function
    | [] -> List.rev acc
    | x :: tl ->
      let rev = x :: rev in
      go (List.rev rev :: acc) rev tl
  in
  go [] [] p

let subpaths p =
  let all = List.concat_map prefixes (suffixes p) in
  List.sort_uniq compare all

let to_string tbl p = String.concat "." (List.map (Repro_graph.Label.to_string tbl) p)

let of_string tbl s =
  let parts = String.split_on_char '.' s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | part :: rest ->
      (match Repro_graph.Label.find tbl part with
       | Some l -> go (l :: acc) rest
       | None -> None)
  in
  if List.exists (fun p -> String.length p = 0) parts then None else go [] parts

let pp tbl ppf p = Format.pp_print_string ppf (to_string tbl p)
