(** Index-free query evaluation by direct graph traversal.

    The reference semantics every index implementation is tested against,
    and the "no index" baseline. Results are nid arrays sorted ascending —
    document order (Section 3: results are sorted as a post-processing
    step). *)

val eval :
  Repro_graph.Data_graph.t -> Query.compiled -> Repro_graph.Data_graph.nid array
(** Evaluate a compiled query:
    - [C1 p] — nodes reachable from {e any} node by traversing [p]
      (Definition 7's [T(p)] endpoints);
    - [C2 (a, b)] — nodes with an incoming [b]-edge from the forward closure
      of nodes with an incoming [a]-edge, where the closure does not
      traverse reference relationships (['@'] labels), per Section 6.1;
    - [C3 (p, v)] — the [C1 p] result filtered to nodes whose data value
      equals [v]. *)

val eval_query :
  Repro_graph.Data_graph.t -> Query.t -> Repro_graph.Data_graph.nid array
(** {!Query.compile} then {!eval}; unknown labels give an empty result. *)
