type t =
  | Qtype1 of string list
  | Qtype2 of string * string
  | Qtype3 of string list * string

type compiled =
  | C1 of Label_path.t
  | C2 of Repro_graph.Label.t * Repro_graph.Label.t
  | C3 of Label_path.t * string

(* Concrete syntax:
     query  ::= '//' steps pred?
     steps  ::= step (sep step)*
     sep    ::= '/' | '//' | '=>'
     step   ::= '@'? name
     pred   ::= '[' 'text()' '=' value ']'
   A '//' separator is only legal in the two-label QTYPE2 form. A '=>'
   separator is surface syntax: '@a=>b' and '@a/b' denote the same label
   path. *)

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' | '.' -> true
  | _ -> false

let parse input =
  let n = String.length input in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let pos = ref 0 in
  let looking_at s =
    let l = String.length s in
    !pos + l <= n && String.equal (String.sub input !pos l) s
  in
  let eat s = pos := !pos + String.length s in
  let read_step () =
    let start = !pos in
    if looking_at "@" then eat "@";
    while !pos < n && is_name_char input.[!pos] do
      incr pos
    done;
    if !pos = start || (input.[start] = '@' && !pos = start + 1) then None
    else Some (String.sub input start (!pos - start))
  in
  if not (looking_at "//") then err "query must start with //"
  else begin
    eat "//";
    let rec read_steps acc saw_descendant =
      match read_step () with
      | None -> err "expected a label at position %d" !pos
      | Some step ->
        let acc = step :: acc in
        if looking_at "//" then begin
          eat "//";
          read_steps acc true
        end
        else if looking_at "=>" then begin
          eat "=>";
          if String.length step = 0 || step.[0] <> '@' then
            err "dereference => must follow an attribute step (@name)"
          else read_steps acc saw_descendant
        end
        else if looking_at "/" then begin
          eat "/";
          read_steps acc saw_descendant
        end
        else Ok (List.rev acc, saw_descendant)
    in
    match read_steps [] false with
    | Error _ as e -> e
    | Ok (steps, saw_descendant) ->
      let value =
        if looking_at "[" then begin
          eat "[";
          if not (looking_at "text()") then err "expected text() in predicate"
          else begin
            eat "text()";
            if not (looking_at "=") then err "expected = in predicate"
            else begin
              eat "=";
              let quoted = looking_at "\"" in
              if quoted then eat "\"";
              let start = !pos in
              let stop_char = if quoted then '"' else ']' in
              while !pos < n && input.[!pos] <> stop_char do
                incr pos
              done;
              let v = String.sub input start (!pos - start) in
              if quoted then
                if looking_at "\"" then eat "\"" else pos := n + 1;
              if looking_at "]" then begin
                eat "]";
                Ok (Some v)
              end
              else err "unterminated predicate"
            end
          end
        end
        else Ok None
      in
      (match value with
       | Error m -> Error m
       | Ok value ->
         if !pos <> n then err "trailing characters at position %d" !pos
         else
           match steps, saw_descendant, value with
           | [ a; b ], true, None -> Ok (Qtype2 (a, b))
           | _, true, _ -> err "// separator is only supported in the //a//b form"
           | steps, false, None -> Ok (Qtype1 steps)
           | steps, false, Some v -> Ok (Qtype3 (steps, v)))
  end

let steps_to_string steps =
  let buf = Buffer.create 32 in
  Buffer.add_string buf "//";
  let rec go = function
    | [] -> ()
    | [ last ] -> Buffer.add_string buf last
    | step :: next :: rest ->
      Buffer.add_string buf step;
      if String.length step > 0 && step.[0] = '@' then Buffer.add_string buf "=>"
      else Buffer.add_char buf '/';
      go (next :: rest)
  in
  go steps;
  Buffer.contents buf

let to_string = function
  | Qtype1 steps -> steps_to_string steps
  | Qtype2 (a, b) -> Printf.sprintf "//%s//%s" a b
  | Qtype3 (steps, v) -> Printf.sprintf "%s[text()=\"%s\"]" (steps_to_string steps) v

let compile tbl q =
  let resolve names =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | name :: rest ->
        (match Repro_graph.Label.find tbl name with
         | Some l -> go (l :: acc) rest
         | None -> None)
    in
    go [] names
  in
  match q with
  | Qtype1 steps ->
    (match resolve steps with Some p -> Some (C1 p) | None -> None)
  | Qtype2 (a, b) ->
    (match Repro_graph.Label.find tbl a, Repro_graph.Label.find tbl b with
     | Some la, Some lb -> Some (C2 (la, lb))
     | _ -> None)
  | Qtype3 (steps, v) ->
    (match resolve steps with Some p -> Some (C3 (p, v)) | None -> None)

let equal a b =
  match a, b with
  | Qtype1 x, Qtype1 y -> List.equal String.equal x y
  | Qtype2 (a1, b1), Qtype2 (a2, b2) -> String.equal a1 a2 && String.equal b1 b2
  | Qtype3 (x, v1), Qtype3 (y, v2) -> List.equal String.equal x y && String.equal v1 v2
  | (Qtype1 _ | Qtype2 _ | Qtype3 _), _ -> false

let pp ppf q = Format.pp_print_string ppf (to_string q)
