lib/pathexpr/query.mli: Format Label_path Repro_graph
