lib/pathexpr/naive_eval.ml: Array Query Queue Repro_graph Repro_util Seq String
