lib/pathexpr/naive_eval.mli: Query Repro_graph
