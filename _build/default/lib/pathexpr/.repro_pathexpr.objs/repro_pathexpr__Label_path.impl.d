lib/pathexpr/label_path.ml: Format Int List Repro_graph String
