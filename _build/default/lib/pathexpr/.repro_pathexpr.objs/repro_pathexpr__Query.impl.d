lib/pathexpr/query.ml: Buffer Format Label_path List Printf Repro_graph String
