lib/pathexpr/label_path.mli: Format Repro_graph
