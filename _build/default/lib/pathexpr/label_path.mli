(** Label paths (Definition 2) and their containment relations
    (Definition 5).

    A label path is a non-empty sequence of interned labels; functions here
    are pure list algebra shared by the miner, the hash tree and the query
    processors. *)

type t = Repro_graph.Label.t list

val equal : t -> t -> bool
val compare : t -> t -> int
val length : t -> int

val is_suffix : suffix:t -> t -> bool
(** [is_suffix ~suffix p] — [suffix] is a suffix of [p] (Definition 5;
    every path is a suffix of itself). *)

val is_subpath : sub:t -> t -> bool
(** [sub] occurs contiguously inside the path. *)

val suffixes : t -> t list
(** All non-empty suffixes, longest first. *)

val subpaths : t -> t list
(** All non-empty contiguous subpaths, without duplicates. *)

val to_string : Repro_graph.Label.table -> t -> string
(** Dot-separated rendering used throughout the paper, e.g.
    ["actor.name"]. *)

val of_string : Repro_graph.Label.table -> string -> t option
(** Parse a dot-separated rendering; [None] if any label is unknown to the
    table (such a path can match nothing in the graph). *)

val pp : Repro_graph.Label.table -> Format.formatter -> t -> unit
