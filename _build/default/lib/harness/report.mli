(** Plain-text table rendering for experiment output. *)

val table : title:string -> header:string list -> string list list -> unit
(** Print an aligned table to stdout. *)

val section : string -> unit
(** Print a section banner. *)

val float2 : float -> string
val float0 : float -> string
val scientific : float -> string
