(** A prepared experimental environment: one dataset plus its query sets,
    storage, and data table — everything Section 6.1 fixes before measuring.

    Query counts default to the paper's (5000 QTYPE1 / 500 QTYPE2 / 1000
    QTYPE3, workload = 20% of QTYPE1); [scale] shrinks the dataset's node
    target for quick runs. All generation is deterministic in the dataset
    spec. *)

type t = {
  spec : Repro_datagen.Dataset.spec;
  graph : Repro_graph.Data_graph.t;
  pool : Repro_storage.Buffer_pool.t;
  table : Repro_storage.Data_table.t;
  q1 : Repro_pathexpr.Query.t array;
  q2 : Repro_pathexpr.Query.t array;
  q3 : Repro_pathexpr.Query.t array;
  workload : Repro_pathexpr.Label_path.t list;
      (** the mined 20% sample of [q1], compiled to label paths *)
}

val prepare :
  ?scale:float ->
  ?n_q1:int ->
  ?n_q2:int ->
  ?n_q3:int ->
  ?workload_fraction:float ->
  ?page_size:int ->
  ?pool_pages:int ->
  Repro_datagen.Dataset.spec ->
  t
(** Defaults: [scale]=1.0, paper query counts, 8 KB pages, a 1024-page
    buffer pool. *)

val compile_workload :
  Repro_graph.Data_graph.t ->
  Repro_pathexpr.Query.t array ->
  Repro_pathexpr.Label_path.t list
(** QTYPE1 queries as label paths (unknown-label queries dropped). *)
