module G = Repro_graph.Data_graph
module Query = Repro_pathexpr.Query

type t = {
  spec : Repro_datagen.Dataset.spec;
  graph : G.t;
  pool : Repro_storage.Buffer_pool.t;
  table : Repro_storage.Data_table.t;
  q1 : Query.t array;
  q2 : Query.t array;
  q3 : Query.t array;
  workload : Repro_pathexpr.Label_path.t list;
}

let compile_workload g queries =
  Array.to_list queries
  |> List.filter_map (fun q ->
         match Query.compile (G.labels g) q with
         | Some (Query.C1 p) -> Some p
         | Some (Query.C2 _ | Query.C3 _) | None -> None)

let prepare ?(scale = 1.0) ?(n_q1 = 5000) ?(n_q2 = 500) ?(n_q3 = 1000)
    ?(workload_fraction = 0.2) ?(page_size = 8192) ?(pool_pages = 1024) spec =
  let spec = if scale = 1.0 then spec else Repro_datagen.Dataset.scaled spec scale in
  let graph = Repro_datagen.Dataset.build_graph spec in
  let pager = Repro_storage.Pager.create ~page_size () in
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:pool_pages in
  let table = Repro_storage.Data_table.build pool graph in
  let rand = Random.State.make [| spec.Repro_datagen.Dataset.seed; 0xBEEF |] in
  let q1 = Repro_workload.Generate.qtype1 ~n:n_q1 rand graph in
  let q2 = Repro_workload.Generate.qtype2 ~n:n_q2 rand graph in
  let q3 = Repro_workload.Generate.qtype3 ~n:n_q3 rand graph in
  let sample = Repro_workload.Generate.sample rand ~fraction:workload_fraction q1 in
  { spec; graph; pool; table; q1; q2; q3; workload = compile_workload graph sample }
