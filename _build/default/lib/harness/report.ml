let section title =
  Printf.printf "\n=== %s ===\n" title

let table ~title ~header rows =
  let all = header :: rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = widths.(i) - String.length cell in
        let padded = if i = 0 then cell ^ String.make pad ' ' else String.make pad ' ' ^ cell in
        Printf.printf "%s%s" (if i = 0 then "" else "  ") padded)
      row;
    print_newline ()
  in
  Printf.printf "\n-- %s --\n" title;
  print_row header;
  print_row (List.mapi (fun i _ -> String.make widths.(i) '-') (List.init n_cols Fun.id));
  List.iter print_row rows

let float2 f = Printf.sprintf "%.2f" f
let float0 f = Printf.sprintf "%.0f" f

let scientific f = Printf.sprintf "%.3g" f
