lib/harness/measure.mli: Repro_graph Repro_pathexpr Repro_storage Stdlib
