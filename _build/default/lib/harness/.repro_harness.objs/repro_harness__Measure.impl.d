lib/harness/measure.ml: Array Printf Repro_pathexpr Repro_storage Unix
