lib/harness/experiments.mli: Repro_datagen Repro_graph Repro_storage Repro_workload
