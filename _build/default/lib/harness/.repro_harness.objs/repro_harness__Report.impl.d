lib/harness/report.ml: Array Fun List Printf String
