lib/harness/env.mli: Repro_datagen Repro_graph Repro_pathexpr Repro_storage
