lib/harness/report.mli:
