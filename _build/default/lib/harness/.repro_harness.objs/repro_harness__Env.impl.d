lib/harness/env.ml: Array List Random Repro_datagen Repro_graph Repro_pathexpr Repro_storage Repro_workload
