type t = {
  apex : Repro_apex.Apex.t;
  log : Repro_workload.Query_log.t;
  min_support : float;
  refresh_every : int;
  pool : Repro_storage.Buffer_pool.t option;
  mutable last_refresh_at : int;  (* total_recorded at the last refresh *)
  mutable refreshes : int;
}

let materialize t =
  match t.pool with
  | Some pool -> Repro_apex.Apex.materialize t.apex pool
  | None -> ()

let create ?(log_capacity = 1000) ?(min_support = 0.005) ?(refresh_every = 500) ?pool graph =
  let t =
    { apex = Repro_apex.Apex.build graph;
      log = Repro_workload.Query_log.create ~capacity:log_capacity;
      min_support;
      refresh_every;
      pool;
      last_refresh_at = 0;
      refreshes = 0
    }
  in
  materialize t;
  t

let force_refresh t =
  Repro_apex.Apex.refresh t.apex
    ~workload:(Repro_workload.Query_log.to_workload t.log)
    ~min_support:t.min_support;
  materialize t;
  t.last_refresh_at <- Repro_workload.Query_log.total_recorded t.log;
  t.refreshes <- t.refreshes + 1

let maybe_refresh t =
  if Repro_workload.Query_log.total_recorded t.log - t.last_refresh_at >= t.refresh_every then
    force_refresh t

let query ?cost ?table t q =
  let result = Repro_apex.Apex_query.eval_query ?cost ?table t.apex q in
  Repro_workload.Query_log.record_query t.log
    (Repro_graph.Data_graph.labels (Repro_apex.Apex.graph t.apex))
    q;
  maybe_refresh t;
  result

let apex t = t.apex
let log t = t.log
let refreshes t = t.refreshes
