lib/adaptive/self_tuning.mli: Repro_apex Repro_graph Repro_pathexpr Repro_storage Repro_workload
