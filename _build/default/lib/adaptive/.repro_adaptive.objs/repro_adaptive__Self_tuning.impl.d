lib/adaptive/self_tuning.ml: Repro_apex Repro_graph Repro_storage Repro_workload
