(** A self-tuning APEX: query evaluation, workload logging, and periodic
    incremental refresh behind one handle.

    This is the loop of Figure 4 run automatically: every evaluated query
    is recorded in a bounded {!Repro_workload.Query_log}; after each
    [refresh_every] recorded queries the frequently-used-path extraction
    and incremental update run on the current window. The paper leaves the
    refresh trigger to the end user ("by request or periodical") — this
    component implements both: the periodic policy plus {!force_refresh}. *)

type t

val create :
  ?log_capacity:int ->
  ?min_support:float ->
  ?refresh_every:int ->
  ?pool:Repro_storage.Buffer_pool.t ->
  Repro_graph.Data_graph.t ->
  t
(** Builds APEX0 over the graph. Defaults: a 1000-entry log, minSup 0.005,
    refresh every 500 recorded queries. When [pool] is given the index is
    (re)materialized there after every refresh, so costed evaluation pays
    page I/O throughout. *)

val query :
  ?cost:Repro_storage.Cost.t ->
  ?table:Repro_storage.Data_table.t ->
  t ->
  Repro_pathexpr.Query.t ->
  Repro_graph.Data_graph.nid array
(** Evaluate, log, and refresh if the policy says so. Results are always
    identical to evaluating against a non-adaptive APEX — adaptation only
    moves cost. *)

val force_refresh : t -> unit
(** Run extraction + update on the current log window immediately. *)

val apex : t -> Repro_apex.Apex.t
val log : t -> Repro_workload.Query_log.t

val refreshes : t -> int
(** Number of refreshes performed so far (periodic and forced). *)
