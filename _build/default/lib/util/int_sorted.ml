let of_unsorted a =
  let a = Array.copy a in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let out = Array.make n a.(0) in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    Array.sub out 0 !k
  end

let is_sorted_set a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok

let mem a x =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true else if a.(mid) < x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let merge_with ~keep_left_only ~keep_right_only ~keep_both a b =
  let na = Array.length a and nb = Array.length b in
  let out = Vec.create ~capacity:(na + nb) () in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      if keep_both then Vec.push out x;
      incr i;
      incr j
    end
    else if x < y then begin
      if keep_left_only then Vec.push out x;
      incr i
    end
    else begin
      if keep_right_only then Vec.push out y;
      incr j
    end
  done;
  if keep_left_only then
    while !i < na do
      Vec.push out a.(!i);
      incr i
    done;
  if keep_right_only then
    while !j < nb do
      Vec.push out b.(!j);
      incr j
    done;
  Vec.to_array out

let union a b =
  if Array.length a = 0 then Array.copy b
  else if Array.length b = 0 then Array.copy a
  else merge_with ~keep_left_only:true ~keep_right_only:true ~keep_both:true a b

let inter a b = merge_with ~keep_left_only:false ~keep_right_only:false ~keep_both:true a b
let diff a b = merge_with ~keep_left_only:true ~keep_right_only:false ~keep_both:false a b

let subset a b = Array.length (diff a b) = 0

let equal a b = a = b

let union_many sets =
  let rec round = function
    | [] -> [||]
    | [ s ] -> s
    | sets ->
      let rec pair = function
        | a :: b :: rest -> union a b :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      round (pair sets)
  in
  round sets
