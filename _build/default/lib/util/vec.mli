(** Growable arrays (amortized O(1) push), used by graph and index builders
    before freezing into plain arrays. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array
(** Fresh array of the current contents. *)

val of_array : 'a array -> 'a t
val clear : 'a t -> unit
