lib/util/int_sorted.ml: Array Vec
