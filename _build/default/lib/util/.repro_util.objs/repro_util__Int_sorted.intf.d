lib/util/int_sorted.mli:
