lib/util/vec.mli:
