(** Sets of integers represented as strictly increasing arrays.

    Used for node-id result sets and packed edge sets: compact, cache
    friendly, and set operations are linear merges. All functions expect
    (and produce) strictly increasing arrays; {!of_unsorted} establishes the
    invariant. *)

val of_unsorted : int array -> int array
(** Sort and remove duplicates (fresh array). *)

val is_sorted_set : int array -> bool
(** True when the array is strictly increasing. *)

val mem : int array -> int -> bool
(** Binary search. *)

val union : int array -> int array -> int array
val inter : int array -> int array -> int array
val diff : int array -> int array -> int array
val subset : int array -> int array -> bool
val equal : int array -> int array -> bool

val union_many : int array list -> int array
(** Union of any number of sets (k-way merge via repeated pairing). *)
