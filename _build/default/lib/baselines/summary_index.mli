(** Common representation and query processor for root-path summary
    indexes — the strong DataGuide and the 1-index.

    Both indexes are graphs whose nodes carry {e target sets} (the data
    nodes reachable by the label paths leading to the index node) and whose
    label paths from the index root are exactly the label paths of the data
    (sound and complete for root paths). They differ only in construction:
    subset construction (deterministic) vs. backward-bisimulation blocks
    (possibly several same-label edges per node).

    Query processing is the paper's "exhaustive navigation": a
    partial-matching query [//l_i/.../l_n] is evaluated by traversing the
    whole index graph in a product with a match automaton over the pattern
    (the compile-time pruning/rewriting of [18]); every index node is
    potentially visited, which is exactly the cost APEX avoids. *)

type t

type builder
(** Used by {!Dataguide} and {!One_index}. *)

val builder : Repro_graph.Data_graph.t -> builder

val add_node : builder -> targets:int array -> int
(** New index node (dense ids from 0) with its sorted target set. The first
    node added is the index root. *)

val add_edge : builder -> int -> Repro_graph.Label.t -> int -> unit

val freeze : builder -> t

val graph : t -> Repro_graph.Data_graph.t
val n_nodes : t -> int
val n_edges : t -> int

val stats : t -> int * int
(** [(nodes, edges)] — Table 2's DataGuide rows. *)

val targets : t -> int -> int array
(** The target set of index node [id] (sorted). @raise Invalid_argument on
    an unknown id. *)

val materialize :
  ?codec:Repro_storage.Extent_store.codec -> t -> Repro_storage.Buffer_pool.t -> unit
(** Store every target set in an extent store (default [`Raw]); queries
    then pay page I/O. *)

val eval :
  ?cost:Repro_storage.Cost.t ->
  ?table:Repro_storage.Data_table.t ->
  t ->
  Repro_pathexpr.Query.compiled ->
  Repro_graph.Data_graph.nid array
(** - [C1 path]: depth-first product traversal of the index with a
      Knuth-Morris-Pratt ends-with automaton for [path]; unions the target
      sets of every match.
    - [C2 (a, b)]: product with the two-state gap automaton ("seen [a]",
      reset on attribute edges per Section 6.1's no-dereference rule).
    - [C3 (path, v)]: [C1] then data-table (or in-memory) value probes.

    Results sorted ascending. *)

val eval_query :
  ?cost:Repro_storage.Cost.t ->
  ?table:Repro_storage.Data_table.t ->
  t ->
  Repro_pathexpr.Query.t ->
  Repro_graph.Data_graph.nid array
