(** A Patricia (compressed radix) trie over byte-string keys.

    The storage structure of the Index Fabric: path-compressed edges, byte
    fan-out, integer payloads per key (several payloads may share a key).
    Traversal visitors expose node counts so the Fabric can charge index
    navigation cost. *)

type t

val create : unit -> t

val insert : t -> string -> int -> unit
(** Add a payload under a key; duplicate keys accumulate payloads. *)

val find : t -> string -> int list
(** Payloads stored under exactly this key ([] when absent). Insertion
    order is not preserved. *)

val find_with_path : t -> string -> int list * int list
(** Payloads plus the ids of the trie nodes visited root-first — the
    Fabric uses the visited ids to charge block reads on its fast path. *)

val n_keys : t -> int
(** Distinct keys. *)

val n_nodes : t -> int
(** Trie nodes (compressed). *)

val iter_nodes :
  t ->
  enter:
    (id:int -> depth:int -> edge:string -> key_prefix:string -> int list -> unit) ->
  unit
(** Depth-first walk calling [enter] on every node with its id, its
    compressed edge, the full key prefix accumulated so far and the
    payloads ending at the node — the whole-structure scan partial-matching
    queries force on the Fabric. *)

val iter_keys : t -> (string -> int list -> unit) -> unit
(** Every (key, payloads) pair, depth-first. *)

val scan :
  t ->
  visit:(id:int -> key_prefix:string -> payloads:int list -> [ `Descend | `Prune ]) ->
  unit
(** Depth-first traversal with subtree pruning: when [visit] answers
    [`Prune], the node's subtree is skipped. The root is always visited. *)
