type node = {
  id : int;
  mutable edge : string;  (* compressed label from parent *)
  children : (char, node) Hashtbl.t;
  mutable payloads : int list;  (* payloads for the key ending here *)
  mutable has_key : bool;
}

type t = {
  root : node;
  mutable keys : int;
  mutable nodes : int;
}

let mk_node t edge =
  let id = match t with Some t -> t.nodes | None -> 0 in
  { id; edge; children = Hashtbl.create 2; payloads = []; has_key = false }

let create () =
  { root = { id = 0; edge = ""; children = Hashtbl.create 2; payloads = []; has_key = false };
    keys = 0;
    nodes = 1
  }

let common_prefix_len a a_off b b_off =
  let n = min (String.length a - a_off) (String.length b - b_off) in
  let rec go i = if i < n && Char.equal a.[a_off + i] b.[b_off + i] then go (i + 1) else i in
  go 0

let mark_key t node payload =
  if not node.has_key then begin
    node.has_key <- true;
    t.keys <- t.keys + 1
  end;
  node.payloads <- payload :: node.payloads

let insert t key payload =
  (* descend from the root, consuming [key] from offset [off]; split
     compressed edges as needed *)
  let rec go node off =
    if off = String.length key then mark_key t node payload
    else
      match Hashtbl.find_opt node.children key.[off] with
      | None ->
        let child = mk_node (Some t) (String.sub key off (String.length key - off)) in
        t.nodes <- t.nodes + 1;
        Hashtbl.add node.children key.[off] child;
        mark_key t child payload
      | Some child ->
        let k = common_prefix_len child.edge 0 key off in
        if k = String.length child.edge then go child (off + k)
        else begin
          (* split child.edge at k *)
          let mid = mk_node (Some t) (String.sub child.edge 0 k) in
          t.nodes <- t.nodes + 1;
          Hashtbl.replace node.children key.[off] mid;
          let rest = String.sub child.edge k (String.length child.edge - k) in
          child.edge <- rest;
          Hashtbl.add mid.children rest.[0] child;
          go mid (off + k)
        end
  in
  go t.root 0

let find_with_path t key =
  let rec go node off visited =
    let visited = node.id :: visited in
    if off = String.length key then
      ((if node.has_key then node.payloads else []), List.rev visited)
    else
      match Hashtbl.find_opt node.children key.[off] with
      | None -> ([], List.rev visited)
      | Some child ->
        let k = common_prefix_len child.edge 0 key off in
        if k = String.length child.edge && off + k <= String.length key then
          go child (off + k) visited
        else ([], List.rev visited)
  in
  go t.root 0 []

let find t key = fst (find_with_path t key)

let n_keys t = t.keys
let n_nodes t = t.nodes

let iter_nodes t ~enter =
  let buf = Buffer.create 64 in
  let rec go node depth =
    let len_before = Buffer.length buf in
    Buffer.add_string buf node.edge;
    enter ~id:node.id ~depth ~edge:node.edge ~key_prefix:(Buffer.contents buf) node.payloads;
    Hashtbl.iter (fun _ child -> go child (depth + 1)) node.children;
    Buffer.truncate buf len_before
  in
  go t.root 0

let scan t ~visit =
  let buf = Buffer.create 64 in
  let rec go node =
    let len_before = Buffer.length buf in
    Buffer.add_string buf node.edge;
    (match visit ~id:node.id ~key_prefix:(Buffer.contents buf) ~payloads:node.payloads with
     | `Descend -> Hashtbl.iter (fun _ child -> go child) node.children
     | `Prune -> ());
    Buffer.truncate buf len_before
  in
  go t.root

let iter_keys t f =
  iter_nodes t ~enter:(fun ~id:_ ~depth:_ ~edge:_ ~key_prefix payloads ->
      if payloads <> [] then f key_prefix payloads)
