(** The Index Fabric (Cooper et al.): a Patricia trie over
    designator-encoded label paths plus data values.

    Every element with a data value contributes a key — its {e document
    tree} root path encoded one byte per label ("designators") followed by
    a separator and the value — so answers to value queries come from the
    index alone. Parent/child structure of valueless elements and
    dereference information are not kept, which is why the Fabric cannot
    serve QTYPE1/QTYPE2 and why a partial-matching QTYPE3 query must scan
    the whole trie (Section 6.1).

    Trie nodes are packed depth-first into fixed-size blocks (8 KB in the
    paper's experiments); a query charges one [trie_pages] unit per distinct
    block it touches. *)

type t

val build : ?block_size:int -> Repro_graph.Data_graph.t -> t
(** [block_size] defaults to 8192 bytes. Requires at most 255 distinct
    labels (one designator byte each). *)

val n_keys : t -> int
val n_trie_nodes : t -> int
val n_blocks : t -> int

val eval_q3 :
  ?cost:Repro_storage.Cost.t ->
  t ->
  Repro_graph.Label.t list ->
  string ->
  Repro_graph.Data_graph.nid array
(** [//l_i/.../l_n[text()=value]] by exhaustive trie traversal: every node
    visit charges [trie_node_visits], every newly touched block
    [trie_pages]; keys whose label path ends with the query path and whose
    value matches contribute their nids. Sorted ascending. *)

val lookup_rooted :
  ?cost:Repro_storage.Cost.t ->
  t ->
  Repro_graph.Label.t list ->
  string ->
  Repro_graph.Data_graph.nid array
(** The Fabric's fast path for comparison/testing: an exact {e root-anchored}
    path + value key search (what the Fabric was designed for). *)

val eval_query :
  ?cost:Repro_storage.Cost.t ->
  t ->
  Repro_pathexpr.Query.t ->
  Repro_graph.Data_graph.nid array option
(** [Some result] for QTYPE3 queries, [None] for query types the Fabric
    does not support. *)
