(** The 1-index (Milo & Suciu): backward-bisimulation quotient.

    Two data nodes share a block when they are backward-bisimilar — they
    have the same incoming label structure recursively, hence the same set
    of incoming label paths. The index graph is the quotient: one node per
    block (its extent the block members), an [l]-edge between blocks when
    some member pair has one. Coincides with the strong DataGuide on tree
    data and is its non-deterministic version otherwise; never larger than
    the data. *)

val build : Repro_graph.Data_graph.t -> Summary_index.t

val n_blocks : Repro_graph.Data_graph.t -> int
(** Number of bisimulation blocks (= index nodes), without building the
    index graph. *)
