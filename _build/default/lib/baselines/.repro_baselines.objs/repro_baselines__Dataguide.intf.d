lib/baselines/dataguide.mli: Repro_graph Summary_index
