lib/baselines/index_fabric.ml: Array Buffer Char Hashtbl List Patricia Repro_graph Repro_pathexpr Repro_storage Repro_util String
