lib/baselines/summary_index.ml: Array Hashtbl List Printf Repro_graph Repro_pathexpr Repro_storage Repro_util Seq String
