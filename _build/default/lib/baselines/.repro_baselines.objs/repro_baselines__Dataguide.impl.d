lib/baselines/dataguide.ml: Array Hashtbl List Queue Repro_graph Repro_util Summary_index
