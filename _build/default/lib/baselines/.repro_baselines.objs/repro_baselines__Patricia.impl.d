lib/baselines/patricia.ml: Buffer Char Hashtbl List String
