lib/baselines/one_index.mli: Repro_graph Summary_index
