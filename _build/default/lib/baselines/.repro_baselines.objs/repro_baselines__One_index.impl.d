lib/baselines/one_index.ml: Array Hashtbl List Repro_graph Repro_util Summary_index
