lib/baselines/summary_index.mli: Repro_graph Repro_pathexpr Repro_storage
