lib/baselines/patricia.mli:
