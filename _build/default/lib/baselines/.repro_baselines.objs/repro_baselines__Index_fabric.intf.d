lib/baselines/index_fabric.mli: Repro_graph Repro_pathexpr Repro_storage
