module G = Repro_graph.Data_graph
module Label = Repro_graph.Label
module Cost = Repro_storage.Cost
module Query = Repro_pathexpr.Query
module Vec = Repro_util.Vec

type node = {
  targets : int array;
  mutable out : (Label.t * int) list;  (* reverse insertion order; frozen sorted *)
  mutable handle : Repro_storage.Extent_store.handle option;
}

type t = {
  graph : G.t;
  nodes : node array;
  mutable store : Repro_storage.Extent_store.t option;
}

type builder = {
  b_graph : G.t;
  b_nodes : node Vec.t;
  mutable b_edges : int;
}

let builder g = { b_graph = g; b_nodes = Vec.create (); b_edges = 0 }

let add_node b ~targets =
  let id = Vec.length b.b_nodes in
  Vec.push b.b_nodes { targets; out = []; handle = None };
  id

let add_edge b x l y =
  let node = Vec.get b.b_nodes x in
  ignore (Vec.get b.b_nodes y);
  node.out <- (l, y) :: node.out;
  b.b_edges <- b.b_edges + 1

let freeze b =
  let nodes = Vec.to_array b.b_nodes in
  Array.iter (fun n -> n.out <- List.sort compare n.out) nodes;
  { graph = b.b_graph; nodes; store = None }

let graph t = t.graph
let n_nodes t = Array.length t.nodes
let n_edges t = Array.fold_left (fun acc n -> acc + List.length n.out) 0 t.nodes
let stats t = (n_nodes t, n_edges t)

let targets t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Summary_index.targets: unknown node %d" id)
  else t.nodes.(id).targets

let materialize ?codec t pool =
  let store = Repro_storage.Extent_store.create ?codec pool in
  Array.iter
    (fun n -> n.handle <- Some (Repro_storage.Extent_store.append_ints store n.targets))
    t.nodes;
  t.store <- Some store

let load_targets ?cost t n =
  match t.store, n.handle with
  | Some store, Some h -> Repro_storage.Extent_store.load_ints ?cost store h
  | _ ->
    (match cost with
     | Some c -> c.Cost.extent_edges <- c.Cost.extent_edges + Array.length n.targets
     | None -> ());
    n.targets

let charge_visit cost =
  match cost with
  | Some c -> c.Cost.index_node_visits <- c.Cost.index_node_visits + 1
  | None -> ()

let charge_edge cost =
  match cost with
  | Some c -> c.Cost.index_edge_lookups <- c.Cost.index_edge_lookups + 1
  | None -> ()

(* Product traversal with an arbitrary finite match automaton. [step] maps
   (state, edge label) to the successor state and whether the edge completes
   a match; matched successors contribute their target sets. *)
(* index nodes are packed ~128 to a disk page; a query charges each
   structure page it touches once *)
let nodes_per_page = 128

let product_eval ?cost t ~n_states ~start ~step =
  let n = Array.length t.nodes in
  let visited = Array.make (n * n_states) false in
  let pages_seen = Hashtbl.create 64 in
  let charge_struct_page id =
    match cost with
    | Some c ->
      let page = id / nodes_per_page in
      if not (Hashtbl.mem pages_seen page) then begin
        Hashtbl.add pages_seen page ();
        c.Cost.struct_pages <- c.Cost.struct_pages + 1
      end
    | None -> ()
  in
  (* Phase 1 — query pruning and rewriting (exhaustive navigation): collect
     the root-anchored index path of every match. *)
  let rewritings = ref [] in
  let rec go id state rev_path =
    let key = (id * n_states) + state in
    if not visited.(key) then begin
      visited.(key) <- true;
      charge_visit cost;
      charge_struct_page id;
      List.iter
        (fun (l, y) ->
          charge_edge cost;
          let state', matched = step state l in
          let rev_path' = y :: rev_path in
          if matched then rewritings := List.rev rev_path' :: !rewritings;
          go y state' rev_path')
        t.nodes.(id).out
    end
  in
  go 0 start [ 0 ];
  (* Phase 2 — each rewritten simple path expression is handed to the
     standard path evaluator, which walks it from the root loading the
     extent of every step (the evaluation architecture the paper ascribes
     to DataGuide-style processing); the answer is the last step's target
     set. Extents load once per query. *)
  let extent_cache : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  let extent_of id =
    match Hashtbl.find_opt extent_cache id with
    | Some e -> e
    | None ->
      let e = load_targets ?cost t t.nodes.(id) in
      Hashtbl.add extent_cache id e;
      e
  in
  let results =
    List.map
      (fun path ->
        match path with
        | [] -> [||]
        | _root :: steps ->
          let rec walk prev = function
            | [] -> prev
            | id :: rest ->
              let cur = extent_of id in
              (match cost with
               | Some c ->
                 c.Cost.join_edges <- c.Cost.join_edges + Array.length prev + Array.length cur
               | None -> ());
              walk cur rest
          in
          walk [||] steps)
      !rewritings
  in
  Repro_util.Int_sorted.union_many results

(* ends-with automaton for a label sequence (KMP) *)
let kmp_step pattern =
  let m = Array.length pattern in
  let fail = Array.make (m + 1) 0 in
  for k = 2 to m do
    let rec go j =
      if pattern.(k - 1) = pattern.(j) then j + 1 else if j = 0 then 0 else go fail.(j)
    in
    fail.(k) <- go fail.(k - 1)
  done;
  let rec step state c =
    if state < m && pattern.(state) = c then state + 1
    else if state = 0 then 0
    else step fail.(state) c
  in
  fun state c ->
    (* after a full match, continue from the longest proper border *)
    let state = if state = m then fail.(m) else state in
    let state' = step state c in
    (state', state' = m)

let eval_q1 ?cost t path =
  let pattern = Array.of_list path in
  let step = kmp_step pattern in
  product_eval ?cost t ~n_states:(Array.length pattern + 1) ~start:0 ~step

let eval_q2 ?cost t la lb =
  let labels = G.labels t.graph in
  let step state l =
    let matched = state = 1 && l = lb in
    let state' =
      if Label.is_attribute labels l then if l = la then 1 else 0
      else if state = 1 then 1
      else if l = la then 1
      else 0
    in
    (state', matched)
  in
  product_eval ?cost t ~n_states:2 ~start:0 ~step

let eval_q3 ?cost ?table t path value =
  let candidates = eval_q1 ?cost t path in
  match table with
  | Some tbl -> Repro_storage.Data_table.filter_matching ?cost tbl candidates value
  | None ->
    let keep nid =
      match G.value t.graph nid with
      | Some v -> String.equal v value
      | None -> false
    in
    Array.of_seq (Seq.filter keep (Array.to_seq candidates))

let eval ?cost ?table t compiled =
  match compiled with
  | Query.C1 path -> eval_q1 ?cost t path
  | Query.C2 (la, lb) -> eval_q2 ?cost t la lb
  | Query.C3 (path, value) -> eval_q3 ?cost ?table t path value

let eval_query ?cost ?table t q =
  match Query.compile (G.labels t.graph) q with
  | Some compiled -> eval ?cost ?table t compiled
  | None -> [||]
