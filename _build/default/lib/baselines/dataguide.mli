(** The strong DataGuide (Goldman & Widom), by subset construction.

    An index node is a set of data nodes (a target set); following label
    [l] from a node leads to the set of all [l]-successors of its members —
    the NFA→DFA construction the paper describes, linear for tree data and
    exponential in the worst case for graphs, and "much larger than the
    original data" on very irregular inputs (the effect Table 2 shows for
    GedML). *)

val build : ?max_nodes:int -> Repro_graph.Data_graph.t -> Summary_index.t
(** @raise Failure when the construction exceeds [max_nodes] (default
    2_000_000) states — the known exponential blow-up guard. *)
