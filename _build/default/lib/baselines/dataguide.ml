module G = Repro_graph.Data_graph
module Vec = Repro_util.Vec

module Key = struct
  type t = int array

  let equal = Repro_util.Int_sorted.equal
  let hash (t : t) = Hashtbl.hash t
end

module Tbl = Hashtbl.Make (Key)

let successor_sets g members =
  let by_label : (int, int Vec.t) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun u ->
      G.iter_out g u (fun l v ->
          match Hashtbl.find_opt by_label l with
          | Some vec -> Vec.push vec v
          | None ->
            let vec = Vec.create () in
            Vec.push vec v;
            Hashtbl.add by_label l vec))
    members;
  Hashtbl.fold
    (fun l vec acc -> (l, Repro_util.Int_sorted.of_unsorted (Vec.to_array vec)) :: acc)
    by_label []
  |> List.sort (fun (l1, _) (l2, _) -> compare l1 l2)

let build ?(max_nodes = 2_000_000) g =
  let b = Summary_index.builder g in
  let ids : int Tbl.t = Tbl.create 1024 in
  let queue = Queue.create () in
  let intern members =
    match Tbl.find_opt ids members with
    | Some id -> id
    | None ->
      let id = Summary_index.add_node b ~targets:members in
      if id >= max_nodes then failwith "Dataguide.build: state explosion (max_nodes exceeded)";
      Tbl.add ids members id;
      Queue.add (id, members) queue;
      id
  in
  let root_id = intern [| G.root g |] in
  assert (root_id = 0);
  while not (Queue.is_empty queue) do
    let id, members = Queue.pop queue in
    List.iter
      (fun (l, succ) -> Summary_index.add_edge b id l (intern succ))
      (successor_sets g members)
  done;
  Summary_index.freeze b
