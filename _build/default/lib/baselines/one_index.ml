module G = Repro_graph.Data_graph
module Vec = Repro_util.Vec

(* Naive signature refinement: block(v) refines by the set of
   (label, block(u)) over incoming edges u --l--> v, iterated to fixpoint.
   Each round is O(E log E); rounds are bounded by the longest incoming
   path over which structure still differs. *)
let compute_blocks g =
  let n = G.n_nodes g in
  let block = Array.make n 0 in
  let changed = ref true in
  let n_blocks = ref 1 in
  while !changed do
    let sigs : (int * (int * int) list, int) Hashtbl.t = Hashtbl.create n in
    let next = Array.make n 0 in
    let fresh = ref 0 in
    for v = 0 to n - 1 do
      let incoming = ref [] in
      G.iter_in g v (fun l u -> incoming := (l, block.(u)) :: !incoming);
      let key = (block.(v), List.sort_uniq compare !incoming) in
      (match Hashtbl.find_opt sigs key with
       | Some id -> next.(v) <- id
       | None ->
         Hashtbl.add sigs key !fresh;
         next.(v) <- !fresh;
         incr fresh)
    done;
    changed := !fresh <> !n_blocks;
    n_blocks := !fresh;
    Array.blit next 0 block 0 n
  done;
  (block, !n_blocks)

let n_blocks g = snd (compute_blocks g)

let build g =
  let block, k = compute_blocks g in
  let members = Array.make k [] in
  for v = G.n_nodes g - 1 downto 0 do
    members.(block.(v)) <- v :: members.(block.(v))
  done;
  (* the index root must be node 0 of the summary: remap blocks so the
     root's block is first *)
  let root_block = block.(G.root g) in
  let remap b = if b = root_block then 0 else if b = 0 then root_block else b in
  let b = Summary_index.builder g in
  for id = 0 to k - 1 do
    let targets = Array.of_list members.(remap id) in
    ignore (Summary_index.add_node b ~targets)
  done;
  let edges = Hashtbl.create 256 in
  G.iter_edges g (fun u l v ->
      let key = (remap block.(u), l, remap block.(v)) in
      if not (Hashtbl.mem edges key) then begin
        Hashtbl.add edges key ();
        let x, l, y = key in
        Summary_index.add_edge b x l y
      end);
  Summary_index.freeze b
